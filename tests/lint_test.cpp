// Self-test corpus for cynthia-lint: at least one true positive and one
// clean counterpart per rule family, plus suppression and renderer coverage.
// These tests drive the rule engine in-process via scan_source() and
// scan_semantic_sources(); the on-disk seeded-violation TUs live in
// tests/lint_corpus/ (LINT_CORPUS_DIR) and are scanned under synthetic
// src/... paths so the path-scoped rules see the layout they gate on. The
// installed binary is exercised separately by the cynthia_lint_src ctest.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lint.hpp"
#include "tools/lint/semantic.hpp"

namespace cl = cynthia::lint;
namespace sem = cynthia::lint::semantic;

namespace {

std::vector<cl::Finding> scan(const std::string& path, const std::string& src) {
  return cl::scan_source(path, src);
}

int count_rule(const std::vector<cl::Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const cl::Finding& f) { return f.rule == rule; }));
}

/// 1-based lines of every finding of `rule`, in report order.
std::vector<int> lines_of(const std::vector<cl::Finding>& findings, const std::string& rule) {
  std::vector<int> lines;
  for (const auto& f : findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

std::string corpus(const std::string& name) {
  const std::string path = std::string(LINT_CORPUS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing corpus file " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Runs the semantic pass over corpus files mounted at synthetic src paths.
std::vector<cl::Finding> scan_sem_corpus(
    const std::vector<std::pair<std::string, std::string>>& mounts) {
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(mounts.size());
  for (const auto& [path, file] : mounts) sources.emplace_back(path, corpus(file));
  return cl::scan_semantic_sources(sources);
}

}  // namespace

// ------------------------------------------------------------- DET rules

TEST(LintDet, FlagsWallClockPrimitives) {
  const auto f = scan("src/sim/clock.cpp",
                      "#pragma once\n"
                      "double now() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n");
  EXPECT_GE(count_rule(f, "DET-001"), 1);
}

TEST(LintDet, FlagsSleepAndGettimeofday) {
  const auto f = scan("src/util/wait.cpp",
                      "void nap() { std::this_thread::sleep_for(x); }\n"
                      "void stamp() { gettimeofday(&tv, nullptr); }\n");
  EXPECT_GE(count_rule(f, "DET-001"), 2);
}

TEST(LintDet, IgnoresChronoInCommentsAndStrings) {
  const auto f = scan("src/sim/doc.cpp",
                      "// std::chrono would be wrong here\n"
                      "const char* s = \"std::chrono::steady_clock\";\n");
  EXPECT_EQ(count_rule(f, "DET-001"), 0);
}

TEST(LintDet, FlagsNondeterministicRandomness) {
  const auto f = scan("src/cloud/noise.cpp",
                      "int r = rand();\n"
                      "std::random_device rd;\n");
  EXPECT_GE(count_rule(f, "DET-002"), 2);
}

TEST(LintDet, SeededRngIsClean) {
  const auto f = scan("src/cloud/noise.cpp", "util::Rng rng(seed); double x = rng.uniform();\n");
  EXPECT_EQ(count_rule(f, "DET-002"), 0);
}

TEST(LintDet, FlagsUnorderedContainersInDeterministicDirs) {
  const std::string src = "#include <unordered_map>\nstd::unordered_map<int, int> m;\n";
  EXPECT_GE(count_rule(scan("src/sim/state.hpp", src), "DET-003"), 1);
  EXPECT_GE(count_rule(scan("src/ddnn/state.hpp", src), "DET-003"), 1);
  EXPECT_GE(count_rule(scan("src/cloud/state.hpp", src), "DET-003"), 1);
}

TEST(LintDet, UnorderedContainersAllowedOutsideDeterministicDirs) {
  const std::string src = "#include <unordered_map>\nstd::unordered_map<int, int> m;\n";
  EXPECT_EQ(count_rule(scan("src/util/cache.hpp", src), "DET-003"), 0);
}

// ------------------------------------------------------------- FLT rules

TEST(LintFlt, FlagsEqualityAgainstFloatLiteral) {
  const auto f = scan("src/core/x.cpp",
                      "if (x == 1.0) {}\n"
                      "if (y != 0.5f) {}\n"
                      "if (z == 1e-9) {}\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 3);
}

TEST(LintFlt, IntLiteralAndVariableComparisonsAreClean) {
  const auto f = scan("src/core/x.cpp",
                      "if (n == 3) {}\n"
                      "if (a == b) {}\n"
                      "if (t0 != t1) {}\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 0);
}

// ----------------------------------------------------------- UNITS rules

TEST(LintUnits, FlagsUnitlessDoubleParameterInHeader) {
  const auto f = scan("src/core/api.hpp", "#pragma once\nvoid set(double knob);\n");
  EXPECT_EQ(count_rule(f, "UNITS-001"), 1);
}

TEST(LintUnits, UnitBearingNamesAndWrappersAreClean) {
  const auto f = scan("src/core/api.hpp",
                      "#pragma once\n"
                      "void set(double delay_seconds, double link_mbps, double t, util::Seconds d);\n");
  EXPECT_EQ(count_rule(f, "UNITS-001"), 0);
}

TEST(LintUnits, SourceFileDeclarationsAreInScope) {
  // .cpp-internal signatures are checked too: helper functions in anonymous
  // namespaces cross call boundaries just like header APIs.
  const auto f = scan("src/core/api.cpp", "void set(double knob) {}\n");
  EXPECT_EQ(count_rule(f, "UNITS-001"), 1);
}

// ------------------------------------------------------------- INC rules

TEST(LintInc, FlagsHeaderWithoutPragmaOnce) {
  const auto f = scan("src/core/guard.hpp", "#ifndef GUARD_HPP\n#define GUARD_HPP\n#endif\n");
  EXPECT_EQ(count_rule(f, "INC-001"), 1);
  EXPECT_EQ(count_rule(scan("src/core/ok.hpp", "#pragma once\nint x;\n"), "INC-001"), 0);
}

TEST(LintInc, FlagsBitsStdcppAndParentEscapes) {
  const auto f = scan("src/core/bad.cpp",
                      "#include <bits/stdc++.h>\n"
                      "#include \"../secret/impl.hpp\"\n");
  EXPECT_EQ(count_rule(f, "INC-002"), 2);
}

// ------------------------------------------------------------- TEL rules

TEST(LintTel, FlagsDuplicateMetricNameConstants) {
  const auto f = scan("src/telemetry/telemetry.hpp",
                      "#pragma once\n"
                      "inline constexpr char kA[] = \"trainer.comp_seconds\";\n"
                      "inline constexpr char kB[] = \"trainer.comp_seconds\";\n"
                      "inline constexpr char kC[] = \"trainer.barrier_seconds\";\n");
  EXPECT_EQ(count_rule(f, "TEL-001"), 1);
  EXPECT_EQ(f[0].line, 3) << "the duplicate, not the original, is flagged";
}

TEST(LintTel, UniqueNamesAndOtherDirectoriesAreClean) {
  const auto clean = scan("src/telemetry/telemetry.hpp",
                          "#pragma once\n"
                          "inline constexpr char kA[] = \"trainer.comp_seconds\";\n"
                          "inline constexpr char kB[] = \"trainer.barrier_seconds\";\n");
  EXPECT_EQ(count_rule(clean, "TEL-001"), 0);
  // Duplicate string constants outside telemetry headers are not metric
  // registry keys; out of scope.
  const auto other = scan("src/core/names.hpp",
                          "#pragma once\n"
                          "inline constexpr char kA[] = \"x\";\n"
                          "inline constexpr char kB[] = \"x\";\n");
  EXPECT_EQ(count_rule(other, "TEL-001"), 0);
}

// ----------------------------------------------------------- suppression

TEST(LintSuppress, SameLineCommentDisarmsRule) {
  const auto f = scan("src/core/x.cpp",
                      "if (x == 1.0) {}  // cynthia-lint: allow(FLT-001) deliberate\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 0);
}

TEST(LintSuppress, PrecedingLineCommentDisarmsNextLine) {
  const auto f = scan("src/core/x.cpp",
                      "// cynthia-lint: allow(FLT-001) deliberate exact guard\n"
                      "if (x == 1.0) {}\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 0);
}

TEST(LintSuppress, SuppressionIsRuleSpecific) {
  const auto f = scan("src/sim/x.cpp",
                      "// cynthia-lint: allow(FLT-001)\n"
                      "int r = rand();\n");
  EXPECT_GE(count_rule(f, "DET-002"), 1);
}

TEST(LintSuppress, AllowFileCoversWholeFile) {
  const auto f = scan("src/util/wall.cpp",
                      "// cynthia-lint: allow-file(DET-001) wall-clock module\n"
                      "auto a = std::chrono::system_clock::now();\n"
                      "auto b = std::chrono::system_clock::now();\n");
  EXPECT_EQ(count_rule(f, "DET-001"), 0);
}

TEST(LintSuppress, SuppressionDoesNotLeakToLaterLines) {
  const auto f = scan("src/core/x.cpp",
                      "// cynthia-lint: allow(FLT-001)\n"
                      "if (x == 1.0) {}\n"
                      "\n"
                      "if (y == 2.0) {}\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 1);
}

// ------------------------------------------------------------- renderers

TEST(LintOutput, RenderersContainFindingFields) {
  const auto f = scan("src/core/x.cpp", "if (x == 1.0) {}\n");
  ASSERT_EQ(f.size(), 1u);
  const std::string text = cl::to_text(f);
  const std::string csv = cl::to_csv(f);
  const std::string json = cl::to_json(f);
  for (const std::string& out : {text, csv, json}) {
    EXPECT_NE(out.find("FLT-001"), std::string::npos) << out;
    EXPECT_NE(out.find("src/core/x.cpp"), std::string::npos) << out;
  }
  EXPECT_NE(csv.find("file,line,rule,message"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"FLT-001\""), std::string::npos);
}

TEST(LintOutput, CleanScanRendersEmpty) {
  const std::vector<cl::Finding> none;
  EXPECT_NE(cl::to_text(none).find("clean"), std::string::npos);
  EXPECT_NE(cl::to_json(none).find("[]"), std::string::npos);
}

TEST(LintCatalog, EveryFamilyRepresented) {
  const auto& rules = cl::rule_catalog();
  EXPECT_GE(rules.size(), 12u);
  for (const char* id :
       {"DET-001", "DET-002", "DET-003", "FLT-001", "UNITS-001", "UNITS-002", "UNITS-003",
        "UNITS-004", "LOCK-001", "INC-001", "INC-002", "TEL-001"}) {
    EXPECT_TRUE(std::any_of(rules.begin(), rules.end(),
                            [&](const cl::RuleInfo& r) { return r.id == id; }))
        << id;
  }
}

TEST(LintFindings, SortedByFileThenLine) {
  const auto f = scan("src/sim/x.cpp",
                      "int a = rand();\n"
                      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_GE(f.size(), 2u);
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_LE(f[i - 1].line, f[i].line);
  }
}

// ------------------------------------------------- on-disk corpus, lexical

TEST(LintCorpus, LexicalRulesHitSeededLines) {
  EXPECT_EQ(lines_of(scan("src/sim/det001_bad.cpp", corpus("det001_bad.cpp")), "DET-001"),
            (std::vector<int>{5}));
  EXPECT_EQ(lines_of(scan("src/cloud/det002_bad.cpp", corpus("det002_bad.cpp")), "DET-002"),
            (std::vector<int>{5}));
  // Both the <unordered_map> include and the declaration are flagged.
  EXPECT_EQ(lines_of(scan("src/sim/det003_bad.hpp", corpus("det003_bad.hpp")), "DET-003"),
            (std::vector<int>{3, 5}));
  EXPECT_EQ(lines_of(scan("src/core/flt001_bad.cpp", corpus("flt001_bad.cpp")), "FLT-001"),
            (std::vector<int>{3}));
  EXPECT_EQ(lines_of(scan("src/core/units001_bad.cpp", corpus("units001_bad.cpp")), "UNITS-001"),
            (std::vector<int>{2}));
  EXPECT_EQ(lines_of(scan("src/core/inc001_bad.hpp", corpus("inc001_bad.hpp")), "INC-001"),
            (std::vector<int>{1}));
  EXPECT_EQ(lines_of(scan("src/core/inc002_bad.cpp", corpus("inc002_bad.cpp")), "INC-002"),
            (std::vector<int>{2}));
  EXPECT_EQ(
      lines_of(scan("src/telemetry/tel001_bad.hpp", corpus("tel001_bad.hpp")), "TEL-001"),
      (std::vector<int>{4}));
}

TEST(LintCorpus, LexicalCleanTwinsAreClean) {
  EXPECT_TRUE(scan("src/sim/det001_clean.cpp", corpus("det001_clean.cpp")).empty());
  EXPECT_TRUE(scan("src/cloud/det002_clean.cpp", corpus("det002_clean.cpp")).empty());
  EXPECT_TRUE(scan("src/sim/det003_clean.hpp", corpus("det003_clean.hpp")).empty());
  EXPECT_TRUE(scan("src/core/flt001_clean.cpp", corpus("flt001_clean.cpp")).empty());
  EXPECT_TRUE(scan("src/core/units001_clean.cpp", corpus("units001_clean.cpp")).empty());
  EXPECT_TRUE(scan("src/core/inc001_clean.hpp", corpus("inc001_clean.hpp")).empty());
  EXPECT_TRUE(scan("src/core/inc002_clean.cpp", corpus("inc002_clean.cpp")).empty());
  EXPECT_TRUE(scan("src/telemetry/tel001_clean.hpp", corpus("tel001_clean.hpp")).empty());
}

// ------------------------------------------------ on-disk corpus, semantic

TEST(LintCorpus, Units002FlagsRegistryNamedRawDoubles) {
  const auto f = scan_sem_corpus({{"src/core/units002_bad.hpp", "units002_bad.hpp"}});
  EXPECT_EQ(lines_of(f, "UNITS-002"), (std::vector<int>{5, 6, 9}));
  const auto clean = scan_sem_corpus({{"src/core/units002_clean.hpp", "units002_clean.hpp"}});
  EXPECT_TRUE(clean.empty());
}

TEST(LintCorpus, Units003FlagsMixedDimensionArithmetic) {
  const auto f = scan_sem_corpus({{"src/core/units003_bad.cpp", "units003_bad.cpp"}});
  EXPECT_EQ(lines_of(f, "UNITS-003"), (std::vector<int>{3}));
  const auto clean = scan_sem_corpus({{"src/core/units003_clean.cpp", "units003_clean.cpp"}});
  EXPECT_TRUE(clean.empty());
}

TEST(LintCorpus, Units003FlagsCallSiteMismatchAcrossTranslationUnits) {
  // The callee's seconds-typed parameter lives in a header the caller only
  // sees over the quoted-include graph; the dollars argument still trips it.
  const auto f = scan_sem_corpus({
      {"src/core/units003_xtu_api.hpp", "units003_xtu_api.hpp"},
      {"src/core/units003_xtu_use.cpp", "units003_xtu_use.cpp"},
  });
  const auto lines = lines_of(f, "UNITS-003");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], 5);
  const auto& hit = *std::find_if(f.begin(), f.end(),
                                  [](const cl::Finding& x) { return x.rule == "UNITS-003"; });
  EXPECT_EQ(hit.file, "src/core/units003_xtu_use.cpp");
  EXPECT_NE(hit.message.find("hold_for"), std::string::npos) << hit.message;
}

TEST(LintCorpus, Units004FlagsMagicConversionConstant) {
  const auto f = scan_sem_corpus({{"src/core/units004_bad.cpp", "units004_bad.cpp"}});
  EXPECT_EQ(lines_of(f, "UNITS-004"), (std::vector<int>{3}));
  const auto clean = scan_sem_corpus({{"src/core/units004_clean.cpp", "units004_clean.cpp"}});
  EXPECT_TRUE(clean.empty());
}

TEST(LintCorpus, Lock001FlagsEarlyReturnWithManualLockHeld) {
  const auto f = scan_sem_corpus({{"src/orchestrator/lock001_bad.cpp", "lock001_bad.cpp"}});
  EXPECT_EQ(lines_of(f, "LOCK-001"), (std::vector<int>{9}));
  const auto clean = scan_sem_corpus({{"src/orchestrator/lock001_clean.cpp", "lock001_clean.cpp"}});
  EXPECT_TRUE(clean.empty());
}

// --------------------------------------------------- semantic unit algebra

TEST(LintSemantic, RegistryMapsNameEndingsToDimensions) {
  ASSERT_TRUE(sem::registry_dim("retry_backoff_seconds").has_value());
  EXPECT_EQ(*sem::registry_dim("retry_backoff_seconds"), sem::second_dim());
  EXPECT_EQ(*sem::registry_dim("budget_dollars"), sem::dollar_dim());
  EXPECT_EQ(*sem::registry_dim("link_mbps"),
            sem::div(sem::byte_dim(), sem::second_dim()));
  // Case-insensitive, ending-anchored: camelCase constants match too.
  ASSERT_TRUE(sem::registry_dim("kMinimumBillableSeconds").has_value());
  EXPECT_EQ(*sem::registry_dim("kMinimumBillableSeconds"), sem::second_dim());
}

TEST(LintSemantic, RegistryExcludesGenericAggregates) {
  // ProvisionPlan::total_time / CandidateEvaluation::cost stay raw double by
  // design; generic endings must not drag them into UNITS-002 scope.
  EXPECT_FALSE(sem::registry_dim("total_time").has_value());
  EXPECT_FALSE(sem::registry_dim("cost").has_value());
  EXPECT_FALSE(sem::registry_dim("secondsmash").has_value());
}

TEST(LintSemantic, DimAlgebraComposes) {
  const sem::Dim rate = sem::div(sem::dollar_dim(), sem::second_dim());
  EXPECT_EQ(sem::mul(rate, sem::second_dim()), sem::dollar_dim());
  EXPECT_TRUE(sem::is_dimensionless(sem::div(sem::second_dim(), sem::second_dim())));
  EXPECT_FALSE(sem::is_dimensionless(rate));
  EXPECT_FALSE(sem::unknown_dim().known);
  EXPECT_EQ(sem::suggested_type(sem::second_dim()), "util::Seconds");
}

TEST(LintSemantic, ConservativeOnUnknownsAndDimensionless) {
  // Unknown operands and dimensionless scalars must never produce UNITS-003.
  const auto f = cl::scan_semantic_sources({{"src/core/x.cpp",
                                             "double f(double elapsed_seconds, double mystery) {\n"
                                             "  double a = elapsed_seconds + mystery;\n"
                                             "  double b = elapsed_seconds * 2.0 + elapsed_seconds;\n"
                                             "  return a + b;\n"
                                             "}\n"}});
  EXPECT_EQ(count_rule(f, "UNITS-003"), 0);
}

TEST(LintSemantic, SuppressionsApplyToSemanticRules) {
  const auto f = cl::scan_semantic_sources(
      {{"src/core/x.hpp",
        "#pragma once\n"
        "// cynthia-lint: allow(UNITS-002) staged migration\n"
        "void wait_for(double timeout_seconds);\n"}});
  EXPECT_EQ(count_rule(f, "UNITS-002"), 0);
}

// -------------------------------------------------------------- baseline

TEST(LintBaseline, RoundTripsThroughRenderAndParse) {
  const std::vector<cl::Finding> f = {
      {"src/a.cpp", 3, "UNITS-002", "m"},
      {"src/a.cpp", 9, "UNITS-002", "m"},
      {"src/b.hpp", 1, "LOCK-001", "m"},
  };
  const cl::Baseline counts = cl::count_findings(f);
  EXPECT_EQ(counts.at({"src/a.cpp", "UNITS-002"}), 2);
  EXPECT_EQ(counts.at({"src/b.hpp", "LOCK-001"}), 1);
  EXPECT_EQ(cl::parse_baseline(cl::render_baseline(counts)), counts);
}

TEST(LintBaseline, CoveredFindingsAreDroppedAndRegressionsKept) {
  const std::vector<cl::Finding> f = {
      {"src/a.cpp", 3, "UNITS-002", "old"},
      {"src/a.cpp", 9, "UNITS-002", "new"},
      {"src/b.hpp", 1, "LOCK-001", "old"},
  };
  cl::Baseline frozen;
  frozen[{"src/a.cpp", "UNITS-002"}] = 1;  // budget exceeded: keep the group
  frozen[{"src/b.hpp", "LOCK-001"}] = 1;   // fully covered: drop
  const auto kept = cl::apply_baseline(f, frozen);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].rule, "UNITS-002");
  EXPECT_EQ(kept[1].rule, "UNITS-002");
}

TEST(LintBaseline, UnlistedFilesAlwaysFail) {
  const std::vector<cl::Finding> f = {{"src/new.cpp", 1, "UNITS-003", "m"}};
  EXPECT_EQ(cl::apply_baseline(f, {}).size(), 1u);
}

TEST(LintBaseline, ParserSkipsCommentsAndThrowsOnGarbage) {
  const cl::Baseline b = cl::parse_baseline("# header\n\n2 UNITS-002 src/a.cpp\n");
  EXPECT_EQ(b.at({"src/a.cpp", "UNITS-002"}), 2);
  EXPECT_THROW(cl::parse_baseline("not-a-count UNITS-002 src/a.cpp\n"), std::runtime_error);
}

// -------------------------------------------------------- emitter escaping

TEST(LintOutput, CsvEscapesQuotesCommasAndNewlines) {
  const std::vector<cl::Finding> f = {
      {"src/we,ird.cpp", 4, "FLT-001", "message with \"quotes\", commas\nand a newline"}};
  const std::string csv = cl::to_csv(f);
  EXPECT_NE(csv.find("\"src/we,ird.cpp\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"message with \"\"quotes\"\", commas\nand a newline\""),
            std::string::npos)
      << csv;
}

TEST(LintOutput, JsonEscapesQuotesBackslashesAndControlChars) {
  const std::vector<cl::Finding> f = {
      {"src\\win.cpp", 2, "INC-002", "bad \"path\" with \ttab and \x01 control"}};
  const std::string json = cl::to_json(f);
  EXPECT_NE(json.find("src\\\\win.cpp"), std::string::npos) << json;
  EXPECT_NE(json.find("bad \\\"path\\\" with \\ttab and \\u0001 control"), std::string::npos)
      << json;
}

TEST(LintOutput, EmittersEscapeEveryCorpusFinding) {
  // Every corpus file rendered through every emitter must stay parseable:
  // no raw quotes inside JSON strings, balanced CSV quoting.
  std::vector<cl::Finding> all;
  for (const char* name : {"det001_bad.cpp", "flt001_bad.cpp", "inc002_bad.cpp"}) {
    const auto f = scan(std::string("src/core/") + name, corpus(name));
    all.insert(all.end(), f.begin(), f.end());
  }
  ASSERT_FALSE(all.empty());
  const std::string json = cl::to_json(all);
  // Walk the JSON: outside of escapes, every '"' must toggle string state,
  // and the document must end outside a string.
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '\\') {
      ++i;
      continue;
    }
    if (json[i] == '"') in_string = !in_string;
    EXPECT_FALSE(in_string && (json[i] == '\n')) << "raw newline inside JSON string";
  }
  EXPECT_FALSE(in_string);
}

// ------------------------------------------------------------------ SARIF

TEST(LintOutput, SarifCarriesRulesResultsAndLocations) {
  const std::vector<cl::Finding> f = {{"./src/core/x.cpp", 7, "UNITS-003", "adding s and MB"}};
  const std::string sarif = cl::to_sarif(f);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"cynthia-lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"UNITS-003\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/core/x.cpp\""), std::string::npos) << "./ stripped";
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  // The driver advertises the full catalog so GitHub can render rule help.
  for (const auto& rule : cl::rule_catalog()) {
    EXPECT_NE(sarif.find("\"id\": \"" + rule.id + "\""), std::string::npos) << rule.id;
  }
}

TEST(LintOutput, SarifEmptyRunIsValid) {
  const std::string sarif = cl::to_sarif({});
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}
