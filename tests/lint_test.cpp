// Self-test corpus for cynthia-lint: at least one true positive and one
// clean counterpart per rule family, plus suppression and renderer coverage.
// These tests drive the rule engine in-process via scan_source(); the
// installed binary is exercised separately by the cynthia_lint_src ctest.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace cl = cynthia::lint;

namespace {

std::vector<cl::Finding> scan(const std::string& path, const std::string& src) {
  return cl::scan_source(path, src);
}

int count_rule(const std::vector<cl::Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const cl::Finding& f) { return f.rule == rule; }));
}

}  // namespace

// ------------------------------------------------------------- DET rules

TEST(LintDet, FlagsWallClockPrimitives) {
  const auto f = scan("src/sim/clock.cpp",
                      "#pragma once\n"
                      "double now() { return std::chrono::steady_clock::now().time_since_epoch().count(); }\n");
  EXPECT_GE(count_rule(f, "DET-001"), 1);
}

TEST(LintDet, FlagsSleepAndGettimeofday) {
  const auto f = scan("src/util/wait.cpp",
                      "void nap() { std::this_thread::sleep_for(x); }\n"
                      "void stamp() { gettimeofday(&tv, nullptr); }\n");
  EXPECT_GE(count_rule(f, "DET-001"), 2);
}

TEST(LintDet, IgnoresChronoInCommentsAndStrings) {
  const auto f = scan("src/sim/doc.cpp",
                      "// std::chrono would be wrong here\n"
                      "const char* s = \"std::chrono::steady_clock\";\n");
  EXPECT_EQ(count_rule(f, "DET-001"), 0);
}

TEST(LintDet, FlagsNondeterministicRandomness) {
  const auto f = scan("src/cloud/noise.cpp",
                      "int r = rand();\n"
                      "std::random_device rd;\n");
  EXPECT_GE(count_rule(f, "DET-002"), 2);
}

TEST(LintDet, SeededRngIsClean) {
  const auto f = scan("src/cloud/noise.cpp", "util::Rng rng(seed); double x = rng.uniform();\n");
  EXPECT_EQ(count_rule(f, "DET-002"), 0);
}

TEST(LintDet, FlagsUnorderedContainersInDeterministicDirs) {
  const std::string src = "#include <unordered_map>\nstd::unordered_map<int, int> m;\n";
  EXPECT_GE(count_rule(scan("src/sim/state.hpp", src), "DET-003"), 1);
  EXPECT_GE(count_rule(scan("src/ddnn/state.hpp", src), "DET-003"), 1);
  EXPECT_GE(count_rule(scan("src/cloud/state.hpp", src), "DET-003"), 1);
}

TEST(LintDet, UnorderedContainersAllowedOutsideDeterministicDirs) {
  const std::string src = "#include <unordered_map>\nstd::unordered_map<int, int> m;\n";
  EXPECT_EQ(count_rule(scan("src/util/cache.hpp", src), "DET-003"), 0);
}

// ------------------------------------------------------------- FLT rules

TEST(LintFlt, FlagsEqualityAgainstFloatLiteral) {
  const auto f = scan("src/core/x.cpp",
                      "if (x == 1.0) {}\n"
                      "if (y != 0.5f) {}\n"
                      "if (z == 1e-9) {}\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 3);
}

TEST(LintFlt, IntLiteralAndVariableComparisonsAreClean) {
  const auto f = scan("src/core/x.cpp",
                      "if (n == 3) {}\n"
                      "if (a == b) {}\n"
                      "if (t0 != t1) {}\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 0);
}

// ----------------------------------------------------------- UNITS rules

TEST(LintUnits, FlagsUnitlessDoubleParameterInHeader) {
  const auto f = scan("src/core/api.hpp", "#pragma once\nvoid set(double knob);\n");
  EXPECT_EQ(count_rule(f, "UNITS-001"), 1);
}

TEST(LintUnits, UnitBearingNamesAndWrappersAreClean) {
  const auto f = scan("src/core/api.hpp",
                      "#pragma once\n"
                      "void set(double delay_seconds, double link_mbps, double t, util::Seconds d);\n");
  EXPECT_EQ(count_rule(f, "UNITS-001"), 0);
}

TEST(LintUnits, SourceFilesAreOutOfScope) {
  const auto f = scan("src/core/api.cpp", "void set(double knob) {}\n");
  EXPECT_EQ(count_rule(f, "UNITS-001"), 0);
}

// ------------------------------------------------------------- INC rules

TEST(LintInc, FlagsHeaderWithoutPragmaOnce) {
  const auto f = scan("src/core/guard.hpp", "#ifndef GUARD_HPP\n#define GUARD_HPP\n#endif\n");
  EXPECT_EQ(count_rule(f, "INC-001"), 1);
  EXPECT_EQ(count_rule(scan("src/core/ok.hpp", "#pragma once\nint x;\n"), "INC-001"), 0);
}

TEST(LintInc, FlagsBitsStdcppAndParentEscapes) {
  const auto f = scan("src/core/bad.cpp",
                      "#include <bits/stdc++.h>\n"
                      "#include \"../secret/impl.hpp\"\n");
  EXPECT_EQ(count_rule(f, "INC-002"), 2);
}

// ------------------------------------------------------------- TEL rules

TEST(LintTel, FlagsDuplicateMetricNameConstants) {
  const auto f = scan("src/telemetry/telemetry.hpp",
                      "#pragma once\n"
                      "inline constexpr char kA[] = \"trainer.comp_seconds\";\n"
                      "inline constexpr char kB[] = \"trainer.comp_seconds\";\n"
                      "inline constexpr char kC[] = \"trainer.barrier_seconds\";\n");
  EXPECT_EQ(count_rule(f, "TEL-001"), 1);
  EXPECT_EQ(f[0].line, 3) << "the duplicate, not the original, is flagged";
}

TEST(LintTel, UniqueNamesAndOtherDirectoriesAreClean) {
  const auto clean = scan("src/telemetry/telemetry.hpp",
                          "#pragma once\n"
                          "inline constexpr char kA[] = \"trainer.comp_seconds\";\n"
                          "inline constexpr char kB[] = \"trainer.barrier_seconds\";\n");
  EXPECT_EQ(count_rule(clean, "TEL-001"), 0);
  // Duplicate string constants outside telemetry headers are not metric
  // registry keys; out of scope.
  const auto other = scan("src/core/names.hpp",
                          "#pragma once\n"
                          "inline constexpr char kA[] = \"x\";\n"
                          "inline constexpr char kB[] = \"x\";\n");
  EXPECT_EQ(count_rule(other, "TEL-001"), 0);
}

// ----------------------------------------------------------- suppression

TEST(LintSuppress, SameLineCommentDisarmsRule) {
  const auto f = scan("src/core/x.cpp",
                      "if (x == 1.0) {}  // cynthia-lint: allow(FLT-001) deliberate\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 0);
}

TEST(LintSuppress, PrecedingLineCommentDisarmsNextLine) {
  const auto f = scan("src/core/x.cpp",
                      "// cynthia-lint: allow(FLT-001) deliberate exact guard\n"
                      "if (x == 1.0) {}\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 0);
}

TEST(LintSuppress, SuppressionIsRuleSpecific) {
  const auto f = scan("src/sim/x.cpp",
                      "// cynthia-lint: allow(FLT-001)\n"
                      "int r = rand();\n");
  EXPECT_GE(count_rule(f, "DET-002"), 1);
}

TEST(LintSuppress, AllowFileCoversWholeFile) {
  const auto f = scan("src/util/wall.cpp",
                      "// cynthia-lint: allow-file(DET-001) wall-clock module\n"
                      "auto a = std::chrono::system_clock::now();\n"
                      "auto b = std::chrono::system_clock::now();\n");
  EXPECT_EQ(count_rule(f, "DET-001"), 0);
}

TEST(LintSuppress, SuppressionDoesNotLeakToLaterLines) {
  const auto f = scan("src/core/x.cpp",
                      "// cynthia-lint: allow(FLT-001)\n"
                      "if (x == 1.0) {}\n"
                      "\n"
                      "if (y == 2.0) {}\n");
  EXPECT_EQ(count_rule(f, "FLT-001"), 1);
}

// ------------------------------------------------------------- renderers

TEST(LintOutput, RenderersContainFindingFields) {
  const auto f = scan("src/core/x.cpp", "if (x == 1.0) {}\n");
  ASSERT_EQ(f.size(), 1u);
  const std::string text = cl::to_text(f);
  const std::string csv = cl::to_csv(f);
  const std::string json = cl::to_json(f);
  for (const std::string& out : {text, csv, json}) {
    EXPECT_NE(out.find("FLT-001"), std::string::npos) << out;
    EXPECT_NE(out.find("src/core/x.cpp"), std::string::npos) << out;
  }
  EXPECT_NE(csv.find("file,line,rule,message"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"FLT-001\""), std::string::npos);
}

TEST(LintOutput, CleanScanRendersEmpty) {
  const std::vector<cl::Finding> none;
  EXPECT_NE(cl::to_text(none).find("clean"), std::string::npos);
  EXPECT_NE(cl::to_json(none).find("[]"), std::string::npos);
}

TEST(LintCatalog, EveryFamilyRepresented) {
  const auto& rules = cl::rule_catalog();
  EXPECT_GE(rules.size(), 8u);
  for (const char* id : {"DET-001", "DET-002", "DET-003", "FLT-001", "UNITS-001", "INC-001",
                         "INC-002", "TEL-001"}) {
    EXPECT_TRUE(std::any_of(rules.begin(), rules.end(),
                            [&](const cl::RuleInfo& r) { return r.id == id; }))
        << id;
  }
}

TEST(LintFindings, SortedByFileThenLine) {
  const auto f = scan("src/sim/x.cpp",
                      "int a = rand();\n"
                      "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_GE(f.size(), 2u);
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_LE(f[i - 1].line, f[i].line);
  }
}
