// Tests for the spot-market substrate and the checkpointed spot execution
// layer (Proteus-style related work).
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/instance.hpp"
#include "cloud/spot.hpp"
#include "ddnn/workload.hpp"
#include "orchestrator/spot_runner.hpp"

namespace cc = cynthia::cloud;
namespace cd = cynthia::ddnn;
namespace orch = cynthia::orch;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }
}  // namespace

// -------------------------------------------------------------- market

TEST(SpotMarket, DeterministicForSeed) {
  cc::SpotMarket a(cc::Catalog::aws(), 5), b(cc::Catalog::aws(), 5);
  for (double t : {0.0, 1000.0, 86400.0}) {
    EXPECT_DOUBLE_EQ(a.price_at("m4.xlarge", t), b.price_at("m4.xlarge", t));
  }
  cc::SpotMarket c(cc::Catalog::aws(), 6);
  bool any_diff = false;
  for (double t = 0; t < 50000; t += 300) {
    any_diff |= a.price_at("m4.xlarge", t) != c.price_at("m4.xlarge", t);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SpotMarket, PricesBoundedAndDiscounted) {
  cc::SpotMarket market;
  const double od = m4().price.value();
  double sum = 0.0;
  int n = 0;
  for (double t = 0; t < 7 * 86400; t += 300) {
    const double p = market.price_at("m4.xlarge", t);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, od * 1.2 + 1e-9);
    sum += p;
    ++n;
  }
  const double avg = sum / n;
  // Long-run average near the configured discount.
  EXPECT_NEAR(avg, od * market.options().mean_discount, od * 0.25);
  EXPECT_LT(avg, od * 0.7) << "spot must be substantially cheaper than on-demand";
}

TEST(SpotMarket, TypesHaveIndependentTraces) {
  cc::SpotMarket market;
  bool differ = false;
  for (double t = 0; t < 20000; t += 300) {
    const double a = market.price_at("m4.xlarge", t) / m4().price.value();
    const double b =
        market.price_at("r3.xlarge", t) / cc::Catalog::aws().at("r3.xlarge").price.value();
    differ |= std::abs(a - b) > 1e-9;
  }
  EXPECT_TRUE(differ);
}

TEST(SpotMarket, CostIntegratesPrice) {
  cc::SpotMarket market;
  // Cost over an hour equals the average price over that hour.
  const double c = market.cost("m4.xlarge", 0.0, 3600.0).value();
  double avg = 0.0;
  for (int i = 0; i < 12; ++i) avg += market.price_at("m4.xlarge", i * 300.0);
  avg /= 12.0;
  EXPECT_NEAR(c, avg, 1e-9);
  EXPECT_DOUBLE_EQ(market.cost("m4.xlarge", 500.0, 500.0).value(), 0.0);
  EXPECT_THROW(market.cost("m4.xlarge", 100.0, 50.0), std::invalid_argument);
}

TEST(SpotMarket, RevocationAndAvailabilityAreConsistent) {
  cc::SpotMarket market;
  const double bid = market.mean_price("m4.xlarge") * 1.3;
  const double revoked = market.next_revocation_after("m4.xlarge", 0.0, bid);
  if (std::isfinite(revoked)) {
    EXPECT_GT(market.price_at("m4.xlarge", revoked), bid);
    const double back = market.next_availability_after("m4.xlarge", revoked, bid);
    ASSERT_TRUE(std::isfinite(back));
    EXPECT_GT(back, revoked);
    EXPECT_LE(market.price_at("m4.xlarge", back), bid);
  }
}

TEST(SpotMarket, HighBidNeverRevoked) {
  cc::SpotMarket market;
  // Above the 1.2x on-demand cap, a bid can never be crossed.
  const double bid = m4().price.value() * 1.3;
  EXPECT_TRUE(std::isinf(
      market.next_revocation_after("m4.xlarge", 0.0, bid, /*horizon=*/3 * 86400)));
}

TEST(SpotMarket, InvalidOptionsThrow) {
  cc::SpotTraceOptions bad;
  bad.step_seconds = cynthia::util::Seconds{0.0};
  EXPECT_THROW(cc::SpotMarket(cc::Catalog::aws(), 1, bad), std::invalid_argument);
  cc::SpotTraceOptions bad2;
  bad2.mean_discount = 0.0;
  EXPECT_THROW(cc::SpotMarket(cc::Catalog::aws(), 1, bad2), std::invalid_argument);
}

// -------------------------------------------------------------- runner

TEST(SpotRunner, CompletesAndUndercutsOnDemand) {
  cc::SpotMarket market(cc::Catalog::aws(), 11);
  const auto& w = cd::workload_by_name("cifar10");
  orch::SpotRunOptions o;
  o.bid_multiplier = 1.8;
  const auto r = orch::run_on_spot(market, w, m4(), 6, 1, 3000, o);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.iterations, 3000);
  EXPECT_GT(r.cost.value(), 0.0);
  EXPECT_LT(r.cost.value(), r.on_demand_cost.value())
      << "spot must be cheaper than on-demand for the same busy time";
  EXPECT_GE(r.wall_time, r.busy_time);
}

TEST(SpotRunner, LowBidMeansMoreRevocationsAndWall) {
  cc::SpotMarket market(cc::Catalog::aws(), 11);
  const auto& w = cd::workload_by_name("cifar10");
  orch::SpotRunOptions tight;
  tight.bid_multiplier = 1.05;
  orch::SpotRunOptions generous;
  generous.bid_multiplier = 2.6;
  const auto a = orch::run_on_spot(market, w, m4(), 6, 1, 3000, tight);
  const auto b = orch::run_on_spot(market, w, m4(), 6, 1, 3000, generous);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GE(a.revocations, b.revocations);
  EXPECT_GE(a.wall_time, b.wall_time);
}

TEST(SpotRunner, CheckpointCadenceTradesOverheadForLoss) {
  cc::SpotMarket market(cc::Catalog::aws(), 23);
  const auto& w = cd::workload_by_name("cifar10");
  orch::SpotRunOptions frequent;
  frequent.bid_multiplier = 1.1;  // stormy: revocations will happen
  frequent.checkpoint_interval = 120.0;
  orch::SpotRunOptions rare = frequent;
  rare.checkpoint_interval = 3600.0;
  const auto f = orch::run_on_spot(market, w, m4(), 6, 1, 6000, frequent);
  const auto r = orch::run_on_spot(market, w, m4(), 6, 1, 6000, rare);
  ASSERT_TRUE(f.completed);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(f.checkpoint_overhead, r.checkpoint_overhead);
  if (r.revocations > 0) {
    EXPECT_GE(r.lost_work, f.lost_work);
  }
}

TEST(SpotRunner, AccountingIsCoherent) {
  cc::SpotMarket market(cc::Catalog::aws(), 31);
  const auto& w = cd::workload_by_name("cifar10");
  orch::SpotRunOptions o;
  o.bid_multiplier = 1.3;
  const auto r = orch::run_on_spot(market, w, m4(), 4, 1, 2000, o);
  ASSERT_TRUE(r.completed);
  // busy time covers useful work + overhead + lost work.
  EXPECT_GE(r.busy_time + 1e-6, r.checkpoint_overhead + r.lost_work);
  // Wall time includes outages whenever there was a revocation.
  if (r.revocations > 0) EXPECT_GT(r.wall_time, r.busy_time);
}

TEST(SpotRunner, InvalidArgumentsThrow) {
  cc::SpotMarket market;
  const auto& w = cd::workload_by_name("cifar10");
  EXPECT_THROW(orch::run_on_spot(market, w, m4(), 4, 1, 0), std::invalid_argument);
  orch::SpotRunOptions bad;
  bad.bid_multiplier = 0.0;
  EXPECT_THROW(orch::run_on_spot(market, w, m4(), 4, 1, 100, bad), std::invalid_argument);
}
