// Tests for the extended model zoo (ResNet-50 / AlexNet / LSTM) and the
// workload_from_network bridge that makes them trainable on the simulator.
#include <gtest/gtest.h>

#include "cloud/instance.hpp"
#include "core/predictor.hpp"
#include "ddnn/trainer.hpp"
#include "ddnn/workload.hpp"
#include "models/zoo.hpp"
#include "profiler/profiler.hpp"

namespace cm = cynthia::models;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }
const cc::InstanceType& p3() { return cc::Catalog::aws().at("p3.2xlarge"); }
}  // namespace

// ---------------------------------------------------------------- zoo

TEST(ZooExt, Resnet50MatchesPublishedNumbers) {
  const auto net = cm::build_resnet50();
  // Published: ~25.6M parameters, ~3.8-4.1 GMACs forward per 224x224 image
  // (our counter reports FLOPs = 2 x MACs, so ~7.7-8.2 GFLOPs).
  EXPECT_NEAR(static_cast<double>(net.total_params()), 25.6e6, 1.5e6);
  EXPECT_NEAR(static_cast<double>(net.forward_flops_per_sample()) / 1e9, 7.8, 1.2);
  EXPECT_EQ(net.output_shape().c, 1000);
}

TEST(ZooExt, AlexnetIsFcDominated) {
  const auto net = cm::build_alexnet();
  // Published single-tower AlexNet is ~61M with valid padding (6x6 fc1
  // input); our SAME-padding variant lands at ~76M (7x7 fc1 input). Either
  // way the dense head dominates.
  EXPECT_NEAR(static_cast<double>(net.total_params()), 76e6, 6e6);
  std::int64_t dense_params = 0;
  for (const auto& l : net.layers()) {
    if (l.kind == cm::LayerKind::Dense) dense_params += l.params;
  }
  EXPECT_GT(dense_params, net.total_params() * 0.9);
}

TEST(ZooExt, LstmSharesWeightsAcrossSteps) {
  const auto net = cm::build_lstm_medium();
  // PTB medium: ~19.8M parameters (embedding + 2x gates + projection),
  // but FLOPs scale with 35 steps: the FLOPs/param ratio must far exceed a
  // plain dense net's 2x.
  EXPECT_NEAR(static_cast<double>(net.total_params()), 19.8e6, 2e6);
  const double flops_per_param = static_cast<double>(net.forward_flops_per_sample()) /
                                 static_cast<double>(net.total_params());
  EXPECT_GT(flops_per_param, 30.0);
}

TEST(ZooExt, BuildByNameCoversExtensions) {
  EXPECT_EQ(cm::build_by_name("resnet50").name(), "resnet-50");
  EXPECT_EQ(cm::build_by_name("alexnet").name(), "alexnet");
  EXPECT_EQ(cm::build_by_name("lstm").name(), "lstm-medium");
}

TEST(ZooExt, RecurrentDenseValidation) {
  cm::NetworkBuilder b("t");
  b.input(1, 1, 8);
  EXPECT_THROW(b.recurrent_dense(4, 0), std::invalid_argument);
  b.recurrent_dense(4, 10);
  auto net = b.build();
  // Params as a plain dense, FLOPs x10.
  EXPECT_EQ(net.total_params(), 8 * 4 + 4);
  EXPECT_EQ(net.forward_flops_per_sample(), 2 * 8 * 4 * 10);
}

// --------------------------------------------------- workload bridge

TEST(WorkloadFromNetwork, DerivesConsistentQuantities) {
  const auto net = cm::build_resnet50();
  cd::WorkloadDerivation opts;
  opts.batch_size = 32;
  opts.sync = cd::SyncMode::BSP;
  const auto w = cd::workload_from_network(net, opts);
  EXPECT_EQ(w.name, "resnet-50");
  EXPECT_NEAR(w.gparam.value(), net.param_megabytes().value(), 1e-9);
  EXPECT_NEAR(w.witer.value(),
              net.training_gflops_per_iteration(32).value() * opts.achieved_flops_efficiency,
              1e-9);
  EXPECT_GT(w.ps_update_gflops.value(), 0.0);
}

TEST(WorkloadFromNetwork, RejectsBadOptions) {
  const auto net = cm::build_mnist_dnn();
  cd::WorkloadDerivation bad;
  bad.batch_size = 0;
  EXPECT_THROW(cd::workload_from_network(net, bad), std::invalid_argument);
  cd::WorkloadDerivation bad2;
  bad2.achieved_flops_efficiency = 0.0;
  EXPECT_THROW(cd::workload_from_network(net, bad2), std::invalid_argument);
}

TEST(WorkloadFromNetwork, DerivedWorkloadTrainsEndToEnd) {
  // The paper's future-work experiment in miniature: ResNet-50/ImageNet on
  // a V100 cluster, planned and executed entirely from structural counts.
  const auto net = cm::build_resnet50();
  cd::WorkloadDerivation opts;
  opts.batch_size = 32;
  opts.sync = cd::SyncMode::BSP;
  opts.default_iterations = 200;
  const auto w = cd::workload_from_network(net, opts);

  cd::TrainOptions o;
  o.iterations = 50;
  const auto gpu = cd::run_training(cd::ClusterSpec::homogeneous(p3(), 4, 1), w, o);
  const auto cpu = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 4, 1), w, o);
  EXPECT_GT(gpu.total_time, 0.0);
  EXPECT_LT(gpu.total_time, cpu.total_time);

  // And the whole predictor pipeline works on it.
  const auto pred = cynthia::core::Predictor::build(w, m4(), {.loss_history_iterations = 400});
  const double predicted =
      pred.model().predict_total(cd::ClusterSpec::homogeneous(m4(), 4, 1), w.sync, 50).value();
  EXPECT_NEAR(predicted, cpu.total_time, cpu.total_time * 0.15);
}

TEST(WorkloadFromNetwork, LstmIsPsHeavy) {
  // The LSTM's parameter payload is big relative to its compute, so its
  // derived workload should saturate the PS quickly — the class of model
  // where Cynthia's bottleneck awareness matters most.
  const auto w = cd::workload_from_network(cm::build_lstm_medium(), {.batch_size = 64});
  const auto r2 = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 2, 1), w,
                                   {.iterations = 100});
  const auto r8 = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 8, 1), w,
                                   {.iterations = 100});
  EXPECT_LT(r8.avg_worker_cpu_util, r2.avg_worker_cpu_util);
}
