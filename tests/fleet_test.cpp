// Tests for the fleet planner: multiple jobs sharing one instance quota.
#include <gtest/gtest.h>

#include "cloud/instance.hpp"
#include "ddnn/workload.hpp"
#include "orchestrator/fleet.hpp"

namespace orch = cynthia::orch;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;
namespace cu = cynthia::util;

namespace {
orch::FleetJob job(const char* id, const char* workload, double minutes, double loss) {
  return {id, cd::workload_by_name(workload), {cu::minutes(minutes), loss}};
}
}  // namespace

TEST(Fleet, SingleJobAdmittedAtTimeZero) {
  orch::FleetPlanner planner(cc::Catalog::aws(), "m4.xlarge", 32);
  const auto plan = planner.plan({job("a", "cifar10", 120, 0.8)});
  ASSERT_EQ(plan.decisions.size(), 1u);
  const auto& d = plan.decisions[0];
  ASSERT_TRUE(d.admitted) << d.reason;
  EXPECT_DOUBLE_EQ(d.start_time, 0.0);
  EXPECT_LE(d.finish_time, 120 * 60.0);
  EXPECT_EQ(plan.admitted, 1);
  EXPECT_EQ(plan.peak_dockers, d.dockers());
  EXPECT_NEAR(plan.total_cost, d.plan.predicted_cost.value(), 1e-9);
}

TEST(Fleet, ParallelJobsWhenQuotaAllows) {
  orch::FleetPlanner planner(cc::Catalog::aws(), "m4.xlarge", 32);
  const auto plan = planner.plan(
      {job("a", "cifar10", 120, 0.8), job("b", "resnet32", 180, 0.6)});
  EXPECT_EQ(plan.admitted, 2);
  // Both start immediately: the quota holds both plans at once.
  for (const auto& d : plan.decisions) {
    EXPECT_DOUBLE_EQ(d.start_time, 0.0) << d.id;
  }
  EXPECT_LE(plan.peak_dockers, 32);
}

TEST(Fleet, SerializesUnderTightQuota) {
  // A quota that fits either job alone but not both together must stagger
  // them, and the later one still has to make its (looser) deadline.
  orch::FleetPlanner wide(cc::Catalog::aws(), "m4.xlarge", 64);
  const auto solo = wide.plan({job("a", "cifar10", 90, 0.8)});
  ASSERT_TRUE(solo.decisions[0].admitted);
  const int need = solo.decisions[0].dockers();

  orch::FleetPlanner tight(cc::Catalog::aws(), "m4.xlarge", need + 1);
  const auto plan = tight.plan(
      {job("a", "cifar10", 90, 0.8), job("b", "cifar10", 400, 0.8)});
  ASSERT_TRUE(plan.decisions[0].admitted) << plan.decisions[0].reason;
  ASSERT_TRUE(plan.decisions[1].admitted) << plan.decisions[1].reason;
  EXPECT_DOUBLE_EQ(plan.decisions[0].start_time, 0.0);
  EXPECT_GE(plan.decisions[1].start_time, plan.decisions[0].finish_time - 1e-6);
  EXPECT_LE(plan.decisions[1].finish_time, 400 * 60.0);
}

TEST(Fleet, RejectsWhenContentionBreaksDeadline) {
  // Two jobs with the same tight deadline cannot both run on a quota that
  // only fits one: EDF admits the first, rejects the second with a reason.
  orch::FleetPlanner wide(cc::Catalog::aws(), "m4.xlarge", 64);
  const auto solo = wide.plan({job("a", "cifar10", 90, 0.8)});
  const int need = solo.decisions[0].dockers();

  orch::FleetPlanner tight(cc::Catalog::aws(), "m4.xlarge", need + 1);
  const auto plan = tight.plan(
      {job("a", "cifar10", 90, 0.8), job("b", "cifar10", 90, 0.8)});
  EXPECT_EQ(plan.admitted, 1);
  EXPECT_EQ(plan.rejected, 1);
  const auto& rejected = plan.decisions[1];
  EXPECT_FALSE(rejected.admitted);
  EXPECT_NE(rejected.reason.find("quota contention"), std::string::npos);
}

TEST(Fleet, RejectsImpossibleGoalWithReason) {
  orch::FleetPlanner planner(cc::Catalog::aws(), "m4.xlarge", 32);
  const auto plan = planner.plan({job("a", "vgg19", 0.2, 0.8)});
  EXPECT_EQ(plan.rejected, 1);
  EXPECT_FALSE(plan.decisions[0].reason.empty());
  EXPECT_DOUBLE_EQ(plan.total_cost, 0.0);
}

TEST(Fleet, EarliestDeadlineFirstOrdering) {
  // With contention, the tighter-deadline job wins the early slot even if
  // submitted later.
  orch::FleetPlanner wide(cc::Catalog::aws(), "m4.xlarge", 64);
  const auto solo = wide.plan({job("x", "cifar10", 90, 0.8)});
  const int need = solo.decisions[0].dockers();

  orch::FleetPlanner tight(cc::Catalog::aws(), "m4.xlarge", need + 1);
  const auto plan = tight.plan(
      {job("loose", "cifar10", 400, 0.8), job("tight", "cifar10", 90, 0.8)});
  ASSERT_TRUE(plan.decisions[1].admitted) << plan.decisions[1].reason;
  EXPECT_DOUBLE_EQ(plan.decisions[1].start_time, 0.0) << "tight deadline should go first";
  ASSERT_TRUE(plan.decisions[0].admitted) << plan.decisions[0].reason;
  EXPECT_GT(plan.decisions[0].start_time, 0.0);
}

TEST(Fleet, InvalidConstructionThrows) {
  EXPECT_THROW(orch::FleetPlanner(cc::Catalog::aws(), "m4.xlarge", 0), std::invalid_argument);
  EXPECT_THROW(orch::FleetPlanner(cc::Catalog::aws(), "z9.mega", 8), std::out_of_range);
}

TEST(Fleet, Deterministic) {
  orch::FleetPlanner planner(cc::Catalog::aws(), "m4.xlarge", 24);
  const std::vector<orch::FleetJob> jobs{job("a", "cifar10", 120, 0.8),
                                         job("b", "resnet32", 180, 0.6),
                                         job("c", "vgg19", 60, 0.8)};
  const auto p1 = planner.plan(jobs);
  const auto p2 = planner.plan(jobs);
  ASSERT_EQ(p1.decisions.size(), p2.decisions.size());
  for (std::size_t i = 0; i < p1.decisions.size(); ++i) {
    EXPECT_EQ(p1.decisions[i].admitted, p2.decisions[i].admitted);
    EXPECT_DOUBLE_EQ(p1.decisions[i].start_time, p2.decisions[i].start_time);
  }
  EXPECT_DOUBLE_EQ(p1.total_cost, p2.total_cost);
}
