// Tests for the CYNTHIA_CHECK invariant layer: the check machinery itself,
// the conservation laws wired into the simulation, and the contract that a
// run with checks enabled is bit-identical to one with checks off.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "cloud/pricing.hpp"
#include "ddnn/trainer.hpp"
#include "ddnn/workload.hpp"
#include "sim/event_queue.hpp"
#include "sim/fluid.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;
namespace cs = cynthia::sim;
namespace cu = cynthia::util;

namespace {

// Restores the global invariant flag on scope exit so tests can't leak
// state into each other regardless of pass/fail order.
class ScopedInvariants {
 public:
  explicit ScopedInvariants(bool enabled) : saved_(cu::invariants_enabled()) {
    cu::set_invariants_enabled(enabled);
  }
  ~ScopedInvariants() { cu::set_invariants_enabled(saved_); }

 private:
  bool saved_;
};

const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

cd::TrainResult train(const char* workload, int sync_override_ssp_bound = -1) {
  const auto& w = cd::workload_by_name(workload);
  auto cluster = cd::ClusterSpec::homogeneous(m4(), 4, 2);
  cd::TrainOptions o;
  o.iterations = 60;
  o.ssp_staleness_bound = sync_override_ssp_bound;
  return cd::run_training(cluster, w, o);
}

}  // namespace

// --------------------------------------------------------- check machinery

TEST(CynthiaCheck, PassingConditionIsSilent) {
  ScopedInvariants on(true);
  EXPECT_NO_THROW(CYNTHIA_CHECK(1 + 1 == 2, "arithmetic broke"));
}

TEST(CynthiaCheck, ViolationThrowsCheckFailureWithContext) {
  ScopedInvariants on(true);
  try {
    CYNTHIA_CHECK(2 < 1, "expected ", 2, " < ", 1);
    FAIL() << "CYNTHIA_CHECK did not throw";
  } catch (const cu::CheckFailure& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 < 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("invariants_test.cpp"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 2 < 1"), std::string::npos) << msg;
  }
}

TEST(CynthiaCheck, DisabledChecksDoNotEvaluateCondition) {
  ScopedInvariants off(false);
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return false;
  };
  CYNTHIA_CHECK(probe(), "must not run");
  EXPECT_EQ(evaluations, 0);
}

TEST(CynthiaCheck, ToggleRoundTrips) {
  ScopedInvariants outer(false);
  EXPECT_FALSE(cu::invariants_enabled());
  cu::set_invariants_enabled(true);
  EXPECT_TRUE(cu::invariants_enabled());
}

TEST(CynthiaCheck, CheckFailureIsALogicError) {
  ScopedInvariants on(true);
  EXPECT_THROW(CYNTHIA_CHECK(false), std::logic_error);
}

TEST(CynthiaCheck, DcheckMatchesBuildConfiguration) {
  ScopedInvariants on(true);
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return true;
  };
  CYNTHIA_DCHECK(probe(), "probe");
#ifdef CYNTHIA_INVARIANTS
  EXPECT_EQ(evaluations, 1) << "CYNTHIA_INVARIANTS builds evaluate DCHECKs";
  EXPECT_THROW(CYNTHIA_DCHECK(false), cu::CheckFailure);
#else
  EXPECT_EQ(evaluations, 0) << "default builds compile DCHECKs out";
  EXPECT_NO_THROW(CYNTHIA_DCHECK(false));
#endif
}

// -------------------------------------------- invariants on healthy runs

TEST(Invariants, BspTrainingPassesAllChecks) {
  ScopedInvariants on(true);
  EXPECT_NO_THROW(train("cifar10"));
}

TEST(Invariants, AspTrainingPassesAllChecks) {
  ScopedInvariants on(true);
  EXPECT_NO_THROW(train("resnet32"));
}

TEST(Invariants, SspTrainingPassesStalenessBound) {
  ScopedInvariants on(true);
  const auto& base = cd::workload_by_name("resnet32");
  auto w = base;
  w.sync = cd::SyncMode::SSP;
  w.ssp_staleness_bound = 2;
  auto cluster = cd::ClusterSpec::homogeneous(m4(), 4, 2);
  cd::TrainOptions o;
  o.iterations = 60;
  EXPECT_NO_THROW(cd::run_training(cluster, w, o));
}

TEST(Invariants, FluidSolverConservesFlowUnderChecks) {
  ScopedInvariants on(true);
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  const auto cpu = fs.add_resource("cpu", 10.0);
  const auto nic = fs.add_resource("nic", 5.0);
  int done = 0;
  fs.start_job(20.0, {cpu, nic}, [&](double) { ++done; });
  fs.start_job(5.0, {nic}, [&](double) { ++done; });
  EXPECT_NO_THROW(sim.run());
  EXPECT_EQ(done, 2);
}

TEST(Invariants, BillingMeterMonotonicityHolds) {
  ScopedInvariants on(true);
  cc::BillingMeter meter;
  meter.start("i-0", m4(), cu::Seconds{0.0});
  double prev = 0.0;
  for (double t : {10.0, 600.0, 3600.0, 7200.0}) {
    const double total = meter.total(cu::Seconds{t}).value();
    EXPECT_GE(total, prev);
    prev = total;
  }
}

// ----------------------------------- checks must not perturb the results

TEST(Invariants, BspResultsBitIdenticalWithChecksOnAndOff) {
  cd::TrainResult off_result, on_result;
  {
    ScopedInvariants off(false);
    off_result = train("cifar10");
  }
  {
    ScopedInvariants on(true);
    on_result = train("cifar10");
  }
  EXPECT_EQ(off_result.total_time, on_result.total_time);
  EXPECT_EQ(off_result.final_loss, on_result.final_loss);
  EXPECT_EQ(off_result.computation_time, on_result.computation_time);
  EXPECT_EQ(off_result.communication_time, on_result.communication_time);
  EXPECT_EQ(off_result.avg_worker_cpu_util, on_result.avg_worker_cpu_util);
}

TEST(Invariants, SspResultsBitIdenticalWithChecksOnAndOff) {
  auto run_ssp = [] {
    auto w = cd::workload_by_name("resnet32");
    w.sync = cd::SyncMode::SSP;
    w.ssp_staleness_bound = 3;
    auto cluster = cd::ClusterSpec::homogeneous(m4(), 4, 2);
    cd::TrainOptions o;
    o.iterations = 60;
    return cd::run_training(cluster, w, o);
  };
  cd::TrainResult off_result, on_result;
  {
    ScopedInvariants off(false);
    off_result = run_ssp();
  }
  {
    ScopedInvariants on(true);
    on_result = run_ssp();
  }
  EXPECT_EQ(off_result.total_time, on_result.total_time);
  EXPECT_EQ(off_result.final_loss, on_result.final_loss);
  EXPECT_EQ(off_result.communication_time, on_result.communication_time);
}

// --------------------------------------------------- event-queue invariant

TEST(Invariants, EventQueuePopOrderChecksPassOnHealthyUse) {
  ScopedInvariants on(true);
  cs::EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(0); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(0.5, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
}
