// Tests for Cynthia's fitted loss model (Eq. 1, Eq. 15, and the ASP
// inversion discussed at Eq. 20).
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/instance.hpp"
#include "core/loss_model.hpp"
#include "ddnn/trainer.hpp"
#include "util/rng.hpp"

namespace co = cynthia::core;
namespace cd = cynthia::ddnn;

namespace {
std::vector<co::TaggedLossSample> synth_samples(cd::SyncMode mode, double b0, double b1, int n) {
  std::vector<co::TaggedLossSample> out;
  for (long s = 100; s <= 3000; s += 100) {
    const double stale = mode == cd::SyncMode::ASP ? std::sqrt(static_cast<double>(n)) : 1.0;
    out.push_back({s, n, b0 * stale / static_cast<double>(s) + b1});
  }
  return out;
}
}  // namespace

TEST(LossFit, RecoversBspCoefficientsExactly) {
  const auto samples = synth_samples(cd::SyncMode::BSP, 1200.0, 0.3, 4);
  const auto m = co::LossModel::fit(cd::SyncMode::BSP, samples);
  EXPECT_NEAR(m.beta0(), 1200.0, 1e-3);
  EXPECT_NEAR(m.beta1(), 0.3, 1e-6);
}

TEST(LossFit, RecoversAspCoefficientsAcrossWorkerCounts) {
  // Mix samples from runs at different n: the sqrt(n)/s regressor must
  // reconcile them into one (beta0, beta1).
  auto samples = synth_samples(cd::SyncMode::ASP, 800.0, 0.2, 4);
  const auto more = synth_samples(cd::SyncMode::ASP, 800.0, 0.2, 9);
  samples.insert(samples.end(), more.begin(), more.end());
  const auto m = co::LossModel::fit(cd::SyncMode::ASP, samples);
  EXPECT_NEAR(m.beta0(), 800.0, 1e-3);
  EXPECT_NEAR(m.beta1(), 0.2, 1e-6);
}

TEST(LossFit, RobustToNoise) {
  auto samples = synth_samples(cd::SyncMode::BSP, 1000.0, 0.25, 1);
  cynthia::util::Rng rng(3);
  for (auto& s : samples) s.loss *= rng.jitter(0.05);
  const auto m = co::LossModel::fit(cd::SyncMode::BSP, samples);
  EXPECT_NEAR(m.beta0(), 1000.0, 100.0);
  EXPECT_NEAR(m.beta1(), 0.25, 0.05);
}

TEST(LossFit, RejectsDegenerateInputs) {
  std::vector<co::TaggedLossSample> one{{100, 1, 1.0}};
  EXPECT_THROW(co::LossModel::fit(cd::SyncMode::BSP, one), std::invalid_argument);
  std::vector<co::TaggedLossSample> bad{{0, 1, 1.0}, {100, 1, 0.5}};
  EXPECT_THROW(co::LossModel::fit(cd::SyncMode::BSP, bad), std::invalid_argument);
  // Increasing loss -> beta0 < 0 -> rejected.
  std::vector<co::TaggedLossSample> rising{{100, 1, 0.1}, {200, 1, 0.5}, {400, 1, 1.0}};
  EXPECT_THROW(co::LossModel::fit(cd::SyncMode::BSP, rising), std::runtime_error);
}

TEST(LossModel, Eq15BspIterations) {
  co::LossModel m(cd::SyncMode::BSP, 2500.0, 0.25);
  // s = ceil(beta0 / (l - beta1)).
  EXPECT_EQ(m.iterations_for(0.8, 1), static_cast<long>(std::ceil(2500.0 / 0.55)));
  EXPECT_EQ(m.iterations_for(0.8, 16), m.iterations_for(0.8, 1)) << "BSP independent of n";
  EXPECT_EQ(m.total_iterations_for(0.8, 16), m.iterations_for(0.8, 1));
}

TEST(LossModel, AspInversionActuallyReachesTarget) {
  // The exact inversion (unlike the paper's printed Eq. 20) must satisfy
  // loss(total iterations) <= target.
  co::LossModel m(cd::SyncMode::ASP, 210.0, 0.10);
  for (int n : {1, 4, 9, 16}) {
    const long per_worker = m.iterations_for(0.8, n);
    const long total = m.total_iterations_for(0.8, n);
    EXPECT_EQ(total, per_worker * n);
    EXPECT_LE(m.loss_at(static_cast<double>(total), n), 0.8 + 1e-9) << n;
    // And it is tight: one fewer per-worker iteration would miss.
    if (per_worker > 1) {
      EXPECT_GT(m.loss_at(static_cast<double>((per_worker - 1) * n), n), 0.8 - 1e-2);
    }
  }
}

TEST(LossModel, AspNeedsFewerPerWorkerIterationsWithMoreWorkers) {
  co::LossModel m(cd::SyncMode::ASP, 210.0, 0.10);
  EXPECT_GT(m.iterations_for(0.8, 2), m.iterations_for(0.8, 8));
  // But more total work due to staleness.
  EXPECT_LT(m.total_iterations_for(0.8, 2), m.total_iterations_for(0.8, 8));
}

TEST(LossModel, InvalidTargetsThrow) {
  co::LossModel m(cd::SyncMode::BSP, 1000.0, 0.3);
  EXPECT_THROW(m.iterations_for(0.3, 1), std::invalid_argument);
  EXPECT_THROW(m.iterations_for(0.1, 1), std::invalid_argument);
  EXPECT_THROW(m.loss_at(0.0, 1), std::invalid_argument);
  EXPECT_THROW(m.iterations_for(0.8, 0), std::invalid_argument);
  EXPECT_THROW(co::LossModel(cd::SyncMode::BSP, -1.0, 0.0), std::invalid_argument);
}

TEST(LossFit, FitRunEndToEndOnSimulatedCurve) {
  // Fit from an actual simulated training run and check the recovered
  // coefficients predict the workload's ground truth within noise.
  const auto& w = cd::workload_by_name("cifar10");
  const auto& m4 = cynthia::cloud::Catalog::aws().at("m4.xlarge");
  cd::TrainOptions o;
  o.iterations = 2000;
  o.loss_sample_stride = 50;
  const auto run = cd::run_training(cd::ClusterSpec::homogeneous(m4, 4, 1), w, o);
  const auto m = co::LossModel::fit_run(cd::SyncMode::BSP, run, 4);
  EXPECT_NEAR(m.beta0(), w.bsp_loss.beta0, w.bsp_loss.beta0 * 0.08);
  EXPECT_NEAR(m.beta1(), w.bsp_loss.beta1, 0.08);
}
