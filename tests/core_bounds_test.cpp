// Tests for Theorem 4.1 (Eqs. 12-14): the provisioning-ratio cap and the
// worker-count search interval.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "cloud/instance.hpp"
#include "core/bounds.hpp"
#include "core/perf_model.hpp"
#include "ddnn/trainer.hpp"
#include "profiler/profiler.hpp"
#include "util/units.hpp"

namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;
namespace cp = cynthia::profiler;
namespace cu = cynthia::util;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

const cp::ProfileResult& profile_of(const char* name) {
  static std::map<std::string, cp::ProfileResult> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, cp::profile_workload(cd::workload_by_name(name), m4())).first;
  }
  return it->second;
}

co::LossModel loss_of(const char* name) {
  const auto& w = cd::workload_by_name(name);
  const auto& c = w.loss();
  return co::LossModel(w.sync, c.beta0, c.beta1);
}
}  // namespace

TEST(Bounds, Eq12RatioUsesTighterOfCpuAndBandwidth) {
  const auto& prof = profile_of("mnist");
  const double r = co::max_provisioning_ratio(prof, m4(), 1.0);
  const double cpu_term = prof.cbase.value() * m4().core_gflops.value() /
                          (prof.cprof.value() * m4().core_gflops.value());
  const double bw_term = co::effective_ps_bandwidth(m4()).value() * prof.cbase.value() /
                         (prof.bprof.value() * m4().core_gflops.value());
  EXPECT_NEAR(r, std::min(cpu_term, bw_term), 1e-9);
  // mnist hammers the PS: only a couple of workers per PS are sustainable.
  EXPECT_LT(r, 5.0);
}

TEST(Bounds, ComputeHeavyWorkloadAllowsManyWorkersPerPs) {
  const double r = co::max_provisioning_ratio(profile_of("resnet32"), m4());
  EXPECT_GT(r, 10.0);
}

TEST(Bounds, HeadroomTightensRatio) {
  const auto& prof = profile_of("vgg19");
  EXPECT_LT(co::max_provisioning_ratio(prof, m4(), 0.8),
            co::max_provisioning_ratio(prof, m4(), 1.0));
}

TEST(Bounds, BspLowerBoundMatchesEq16) {
  const auto& prof = profile_of("cifar10");
  const auto loss = loss_of("cifar10");
  const auto tg = cu::minutes(90);
  const auto b = co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, tg, 0.8);
  const long s = loss.iterations_for(0.8, 1);
  const int expect = static_cast<int>(
      std::ceil(prof.witer.value() * s / (tg.value() * m4().core_gflops.value())));
  EXPECT_EQ(b.n_lower, expect);
  EXPECT_EQ(b.iterations, s);
  EXPECT_TRUE(b.feasible);
}

TEST(Bounds, IntervalIsOrderedAndPsPositive) {
  for (const char* name : {"mnist", "cifar10", "resnet32", "vgg19"}) {
    const auto& w = cd::workload_by_name(name);
    const auto b = co::compute_bounds(profile_of(name), loss_of(name), m4(), w.sync,
                                      cu::minutes(60), w.loss().beta1 + 0.5);
    EXPECT_GE(b.n_upper, b.n_lower) << name;
    EXPECT_GE(b.n_lower, 1) << name;
    EXPECT_GE(b.n_ps, 1) << name;
    EXPECT_GT(b.r, 0.0) << name;
  }
}

TEST(Bounds, TighterGoalRaisesLowerBound) {
  const auto& prof = profile_of("cifar10");
  const auto loss = loss_of("cifar10");
  const auto loose = co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, cu::minutes(180), 0.8);
  const auto tight = co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, cu::minutes(60), 0.8);
  EXPECT_GT(tight.n_lower, loose.n_lower);
}

TEST(Bounds, LowerLossTargetNeedsMoreWorkers) {
  const auto& prof = profile_of("cifar10");
  const auto loss = loss_of("cifar10");
  const auto easy = co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, cu::minutes(60), 0.8);
  const auto hard = co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, cu::minutes(60), 0.6);
  EXPECT_GT(hard.n_lower, easy.n_lower);
  // Harder targets also demand more PS (Fig. 12's 2-PS cell).
  EXPECT_GE(hard.n_ps, easy.n_ps);
}

TEST(Bounds, AspLowerBoundQuadraticInGoalInverse) {
  // n_lower ~ (1/Tg)^2 for ASP (Eq. 21 analogue): quartering the goal
  // multiplies the bound by ~16.
  const auto& prof = profile_of("vgg19");
  const auto loss = loss_of("vgg19");
  const auto at60 = co::compute_bounds(prof, loss, m4(), cd::SyncMode::ASP, cu::minutes(60), 0.8);
  const auto at15 = co::compute_bounds(prof, loss, m4(), cd::SyncMode::ASP, cu::minutes(15), 0.8);
  EXPECT_GE(at15.n_lower, 12 * at60.n_lower / 1);  // ~16x with ceiling slack
}

TEST(Bounds, UpperForPsGrowsWithPsCount) {
  const auto& prof = profile_of("cifar10");
  const auto loss = loss_of("cifar10");
  const auto b = co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, cu::minutes(60), 0.7);
  const int u1 = co::upper_bound_for_ps(b, prof, m4(), cd::SyncMode::BSP, b.n_ps);
  const int u2 = co::upper_bound_for_ps(b, prof, m4(), cd::SyncMode::BSP, b.n_ps + 1);
  EXPECT_EQ(u1, b.n_upper);
  EXPECT_GT(u2, u1);
  EXPECT_THROW(co::upper_bound_for_ps(b, prof, m4(), cd::SyncMode::BSP, 0),
               std::invalid_argument);
}

TEST(Bounds, InvalidGoalsThrow) {
  const auto& prof = profile_of("cifar10");
  const auto loss = loss_of("cifar10");
  EXPECT_THROW(
      co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, cu::Seconds{0.0}, 0.8),
      std::invalid_argument);
  EXPECT_THROW(
      co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, cu::minutes(60), 0.1),
      std::invalid_argument);
}

// The theorem's purpose: the interval must bracket the worker count whose
// simulated time actually meets the goal most cheaply. Validated against a
// brute-force scan of the simulator.
TEST(Bounds, IntervalBracketsSimulatedOptimum) {
  const auto& w = cd::workload_by_name("cifar10");
  const auto& prof = profile_of("cifar10");
  const auto loss = loss_of("cifar10");
  const auto tg = cu::minutes(90);
  const double lg = 0.8;
  const long s = loss.iterations_for(lg, 1);
  const auto b = co::compute_bounds(prof, loss, m4(), cd::SyncMode::BSP, tg, lg);

  // Brute force: smallest n that meets the goal in the simulator (scaled
  // iteration count to keep the test fast; time scales linearly).
  const long probe_iters = 200;
  const double scaled_goal = tg.value() * probe_iters / static_cast<double>(s);
  int best_n = -1;
  for (int n = 1; n <= 24; ++n) {
    cd::TrainOptions o;
    o.iterations = probe_iters;
    const auto r = cd::run_training(cd::ClusterSpec::homogeneous(m4(), n, b.n_ps), w, o);
    if (r.total_time <= scaled_goal) {
      best_n = n;
      break;
    }
  }
  ASSERT_GT(best_n, 0) << "goal unreachable in simulator";
  EXPECT_GE(best_n, b.n_lower - 1);
  EXPECT_LE(best_n, b.n_upper + 1);
}
