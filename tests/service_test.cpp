// Multi-tenant provisioning service suite: region capacity accounting,
// synthetic traffic determinism, admission/queueing policy, and the fleet
// determinism contracts (run-twice digest equality; single-job path on an
// unbounded region bit-identical to orch::TrainingService::submit).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "core/provisioner.hpp"
#include "ddnn/workload.hpp"
#include "orchestrator/service.hpp"
#include "profiler/profiler.hpp"
#include "region/region.hpp"
#include "service/job.hpp"
#include "service/service.hpp"
#include "service/traffic.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace cc = cynthia::cloud;
namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cp = cynthia::profiler;
namespace cr = cynthia::region;
namespace cs = cynthia::service;
namespace ct = cynthia::telemetry;
namespace cu = cynthia::util;

namespace {

class ScopedInvariants {
 public:
  explicit ScopedInvariants(bool enabled) : saved_(cu::invariants_enabled()) {
    cu::set_invariants_enabled(enabled);
  }
  ~ScopedInvariants() { cu::set_invariants_enabled(saved_); }
  ScopedInvariants(const ScopedInvariants&) = delete;
  ScopedInvariants& operator=(const ScopedInvariants&) = delete;

 private:
  bool saved_;
};

const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

co::Provisioner make_provisioner(const char* name,
                                 std::vector<cc::InstanceType> types = {}) {
  static std::map<std::string, cp::ProfileResult> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, cp::profile_workload(cd::workload_by_name(name), m4())).first;
  }
  const auto& w = cd::workload_by_name(name);
  co::LossModel loss(w.sync, w.loss().beta0, w.loss().beta1);
  if (types.empty()) types = cc::Catalog::aws().provisionable();
  return co::Provisioner(co::CynthiaModel(it->second), std::move(loss), std::move(types));
}

const co::ProvisionGoal kMnistGoal{cu::hours(1.0), 0.5};

/// Docker footprint of the cost-optimal mnist plan on m4.xlarge alone —
/// several fixtures size their region to exactly one such job at a time.
int mnist_m4_footprint() {
  static const int footprint = [] {
    auto prov = make_provisioner("mnist", {m4()});
    const auto plan = prov.plan(cd::workload_by_name("mnist").sync, kMnistGoal);
    EXPECT_TRUE(plan.feasible);
    return plan.n_workers + plan.n_ps;
  }();
  return footprint;
}

cs::JobRequest mnist_request(long id, cs::Priority priority, double arrival,
                             double patience = 0.0) {
  cs::JobRequest rq;
  rq.id = id;
  rq.tenant = "t" + std::to_string(id);
  rq.workload = "mnist";
  rq.goal = kMnistGoal;
  rq.priority = priority;
  rq.arrival = cu::Seconds{arrival};
  rq.max_queue_wait = cu::Seconds{patience};
  return rq;
}

}  // namespace

// ---------------------------------------------------------------------------
// Region: finite per-type capacity accounting.
// ---------------------------------------------------------------------------

TEST(Region, ReserveReleaseAccounting) {
  cr::Region region({{"m4.xlarge", 8}, {"c3.xlarge", 4}});
  EXPECT_FALSE(region.is_unbounded());
  EXPECT_EQ(region.capacity("m4.xlarge"), 8);
  EXPECT_EQ(region.available("m4.xlarge"), 8);
  EXPECT_EQ(region.capacity_total(), 12);

  EXPECT_TRUE(region.fits("m4.xlarge", 8));
  EXPECT_FALSE(region.fits("m4.xlarge", 9));
  EXPECT_FALSE(region.fits("g2.2xlarge", 1));  // unstocked type never fits

  region.reserve("m4.xlarge", 5, cu::Seconds{0.0});
  EXPECT_EQ(region.reserved("m4.xlarge"), 5);
  EXPECT_EQ(region.available("m4.xlarge"), 3);
  EXPECT_EQ(region.reserved_total(), 5);

  region.release("m4.xlarge", 5, cu::Seconds{10.0});
  EXPECT_EQ(region.reserved_total(), 0);
  EXPECT_EQ(region.available("m4.xlarge"), 8);
}

TEST(Region, ConstructorRejectsBadCapacities) {
  EXPECT_THROW(cr::Region({{"m4.xlarge", 4}, {"m4.xlarge", 2}}), std::invalid_argument);
  EXPECT_THROW(cr::Region({{"m4.xlarge", -7}}), std::invalid_argument);
}

TEST(Region, OverCommitAndOverReleaseThrow) {
  cr::Region region({{"m4.xlarge", 4}});
  EXPECT_THROW(region.reserve("m4.xlarge", 5, cu::Seconds{0.0}), std::logic_error);
  region.reserve("m4.xlarge", 4, cu::Seconds{0.0});
  EXPECT_THROW(region.release("m4.xlarge", 5, cu::Seconds{1.0}), std::logic_error);
  EXPECT_THROW(region.release("c3.xlarge", 1, cu::Seconds{1.0}), std::logic_error);
}

TEST(Region, BackwardsClockTripsInvariantCheck) {
  ScopedInvariants on(true);
  cr::Region region({{"m4.xlarge", 4}});
  region.reserve("m4.xlarge", 2, cu::Seconds{10.0});
  EXPECT_THROW(region.release("m4.xlarge", 2, cu::Seconds{5.0}), cu::CheckFailure);
}

TEST(Region, UtilizationIsAnExactIntegral) {
  cr::Region region({{"m4.xlarge", 4}});
  region.reserve("m4.xlarge", 2, cu::Seconds{0.0});
  region.release("m4.xlarge", 2, cu::Seconds{50.0});
  region.advance_to(cu::Seconds{100.0});
  EXPECT_DOUBLE_EQ(region.busy_docker_seconds(), 100.0);  // 2 dockers x 50 s
  EXPECT_DOUBLE_EQ(region.utilization(cu::Seconds{100.0}), 0.25);
}

TEST(Region, UnboundedFactoryFitsEverything) {
  const cr::Region region = cr::Region::unbounded();
  EXPECT_TRUE(region.is_unbounded());
  EXPECT_TRUE(region.fits("m4.xlarge", 1 << 20));
  EXPECT_EQ(region.available("m4.xlarge"), cr::Region::kUnbounded);
  EXPECT_EQ(region.capacity_total(), 0);  // no finite capacity
  EXPECT_DOUBLE_EQ(region.utilization(cu::Seconds{100.0}), 0.0);
}

TEST(Region, ParseGrammar) {
  const cr::Region two = cr::Region::parse("m4.xlarge=256,c3.xlarge=128");
  EXPECT_EQ(two.capacity("m4.xlarge"), 256);
  EXPECT_EQ(two.capacity("c3.xlarge"), 128);
  EXPECT_EQ(two.capacities().size(), 2u);

  const cr::Region star = cr::Region::parse("*=512");
  for (const auto& cap : star.capacities()) EXPECT_EQ(cap.docker_slots, 512);
  EXPECT_GT(star.capacities().size(), 2u);

  EXPECT_TRUE(cr::Region::parse("inf").is_unbounded());

  EXPECT_THROW(cr::Region::parse(""), std::invalid_argument);
  EXPECT_THROW(cr::Region::parse("no-such-type=4"), std::invalid_argument);
  EXPECT_THROW(cr::Region::parse("m4.xlarge=abc"), std::invalid_argument);
  EXPECT_THROW(cr::Region::parse("m4.xlarge=4,m4.xlarge=8"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Core: the finite-region planning cap (ProvisionOptions::max_total_dockers).
// ---------------------------------------------------------------------------

TEST(MaxTotalDockers, CapsPlanFootprint) {
  auto prov = make_provisioner("cifar10");
  const auto sync = cd::workload_by_name("cifar10").sync;
  const co::ProvisionGoal goal{cu::minutes(120), 0.8};
  const auto unconstrained = prov.plan(sync, goal);
  ASSERT_TRUE(unconstrained.feasible);
  const int footprint = unconstrained.n_workers + unconstrained.n_ps;

  // A cap at the unconstrained footprint changes nothing.
  co::ProvisionOptions at_cap;
  at_cap.max_total_dockers = footprint;
  const auto same = prov.plan(sync, goal, at_cap);
  ASSERT_TRUE(same.feasible);
  EXPECT_EQ(same.type.name, unconstrained.type.name);
  EXPECT_EQ(same.n_workers, unconstrained.n_workers);
  EXPECT_EQ(same.n_ps, unconstrained.n_ps);

  // Any feasible capped plan respects the cap.
  co::ProvisionOptions tight;
  tight.max_total_dockers = footprint > 2 ? footprint - 1 : footprint;
  const auto capped = prov.plan(sync, goal, tight);
  if (capped.feasible) {
    EXPECT_LE(capped.n_workers + capped.n_ps, tight.max_total_dockers);
  }

  // One docker cannot hold a worker and a PS.
  co::ProvisionOptions one;
  one.max_total_dockers = 1;
  EXPECT_FALSE(prov.plan(sync, goal, one).feasible);
}

TEST(MaxTotalDockers, CapsReplanFootprint) {
  auto prov = make_provisioner("cifar10");
  const auto sync = cd::workload_by_name("cifar10").sync;
  co::ProvisionOptions opts;
  opts.max_total_dockers = 4;
  const auto plan = prov.replan(sync, 2000, cu::hours(4.0), opts);
  if (plan.feasible) {
    EXPECT_LE(plan.n_workers + plan.n_ps, 4);
  }
  co::ProvisionOptions one;
  one.max_total_dockers = 1;
  EXPECT_FALSE(prov.replan(sync, 2000, cu::hours(4.0), one).feasible);
}

// ---------------------------------------------------------------------------
// Traffic generator.
// ---------------------------------------------------------------------------

TEST(Traffic, DeterministicAndArrivalOrdered) {
  cs::TrafficOptions opts;
  opts.jobs = 300;
  opts.seed = 11;
  const cs::TrafficGenerator gen(opts);
  const auto a = gen.generate();
  const auto b = gen.generate();
  ASSERT_EQ(a.size(), 300u);
  ASSERT_EQ(b.size(), 300u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<long>(i));
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].goal.time_goal.value(), b[i].goal.time_goal.value());
    EXPECT_EQ(a[i].goal.target_loss, b[i].goal.target_loss);
    EXPECT_EQ(a[i].priority, b[i].priority);
    EXPECT_EQ(a[i].arrival.value(), b[i].arrival.value());
    if (i > 0) {
      EXPECT_GE(a[i].arrival.value(), a[i - 1].arrival.value());
    }
  }

  cs::TrafficOptions other = opts;
  other.seed = 12;
  const auto c = cs::TrafficGenerator(other).generate();
  bool any_difference = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i].arrival.value() != a[i].arrival.value() || c[i].workload != a[i].workload) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Traffic, MixesWorkloadsAndClasses) {
  cs::TrafficOptions opts;
  opts.jobs = 500;
  opts.seed = 3;
  std::map<std::string, int> workloads;
  std::map<cs::Priority, int> classes;
  for (const auto& rq : cs::TrafficGenerator(opts).generate()) {
    workloads[rq.workload] += 1;
    classes[rq.priority] += 1;
    EXPECT_GE(rq.arrival.value(), 0.0);
    EXPECT_LE(rq.arrival.value(), opts.horizon.value());
    EXPECT_GT(rq.goal.target_loss, 0.0);
    EXPECT_GT(rq.goal.time_goal.value(), 0.0);
  }
  EXPECT_GE(workloads.size(), 3u);  // the default mix actually mixes
  EXPECT_EQ(classes.size(), 3u);    // all three priority classes appear
}

TEST(Traffic, ParseGrammar) {
  const auto opts =
      cs::TrafficOptions::parse("poisson:jobs=250,horizon=6h,diurnal=0.6,peak=9,seed=5,"
                                "tenants=16,patience=30m,production=0.1,batch=0.5,"
                                "mix=mnist:6+cifar10:4");
  EXPECT_EQ(opts.jobs, 250);
  EXPECT_DOUBLE_EQ(opts.horizon.value(), 6.0 * 3600.0);
  EXPECT_DOUBLE_EQ(opts.diurnal_amplitude, 0.6);
  EXPECT_DOUBLE_EQ(opts.peak_hour, 9.0);
  EXPECT_EQ(opts.seed, 5u);
  EXPECT_EQ(opts.tenants, 16);
  EXPECT_DOUBLE_EQ(opts.patience.value(), 1800.0);
  EXPECT_DOUBLE_EQ(opts.production_fraction, 0.1);
  EXPECT_DOUBLE_EQ(opts.batch_fraction, 0.5);
  ASSERT_EQ(opts.mix.size(), 2u);
  EXPECT_EQ(opts.mix[0].workload, "mnist");
  EXPECT_DOUBLE_EQ(opts.mix[0].weight, 6.0);

  EXPECT_THROW(cs::TrafficOptions::parse("jobs=0"), std::invalid_argument);
  EXPECT_THROW(cs::TrafficOptions::parse("jobs=abc"), std::invalid_argument);
  EXPECT_THROW(cs::TrafficOptions::parse("diurnal=1.5"), std::invalid_argument);
  EXPECT_THROW(cs::TrafficOptions::parse("production=0.8,batch=0.4"), std::invalid_argument);
  EXPECT_THROW(cs::TrafficOptions::parse("nonsense=1"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ProvisioningService: admission, queueing, and determinism.
// ---------------------------------------------------------------------------

TEST(Service, UnboundedRegionAdmitsEverythingImmediately) {
  cs::ProvisioningService svc(cr::Region::unbounded());
  std::vector<cs::JobRequest> requests;
  for (long id = 0; id < 8; ++id) {
    requests.push_back(mnist_request(id, cs::Priority::kStandard, 10.0 * static_cast<double>(id)));
  }
  const auto result = svc.run(requests);
  EXPECT_EQ(result.stats.submitted, 8);
  EXPECT_EQ(result.stats.admitted, 8);
  EXPECT_EQ(result.stats.completed, 8);
  EXPECT_EQ(result.stats.rejected, 0);
  EXPECT_DOUBLE_EQ(result.stats.queue_wait_max.value(), 0.0);
  EXPECT_DOUBLE_EQ(result.stats.utilization, 0.0);  // no finite denominator
  for (const auto& o : result.outcomes) {
    EXPECT_EQ(o.state, cs::JobState::kCompleted);
    EXPECT_DOUBLE_EQ(o.queue_wait.value(), 0.0);
    EXPECT_GT(o.cost.value(), 0.0);
    EXPECT_GT(o.run_seconds.value(), 0.0);
  }
}

TEST(Service, PriorityQueueOrderOnContendedRegion) {
  // Capacity for exactly one mnist job at a time. Job 9 takes the region at
  // t=0; jobs 0 (batch), 1 (production), 2 (standard) all arrive at t=1 and
  // queue. Admission order must be production, standard, batch regardless
  // of arrival-event order.
  const int slots = mnist_m4_footprint();
  cs::ProvisioningService svc(cr::Region({{"m4.xlarge", slots}}));
  std::vector<cs::JobRequest> requests;
  requests.push_back(mnist_request(9, cs::Priority::kStandard, 0.0));
  requests.push_back(mnist_request(0, cs::Priority::kBatch, 1.0));
  requests.push_back(mnist_request(1, cs::Priority::kProduction, 1.0));
  requests.push_back(mnist_request(2, cs::Priority::kStandard, 1.0));
  const auto result = svc.run(requests);

  ASSERT_EQ(result.stats.completed, 4);
  std::map<long, const cs::JobOutcome*> by_id;
  for (const auto& o : result.outcomes) by_id[o.request.id] = &o;
  EXPECT_DOUBLE_EQ(by_id.at(9)->queue_wait.value(), 0.0);
  EXPECT_GT(by_id.at(1)->queue_wait.value(), 0.0);
  EXPECT_LT(by_id.at(1)->admitted_at.value(), by_id.at(2)->admitted_at.value());
  EXPECT_LT(by_id.at(2)->admitted_at.value(), by_id.at(0)->admitted_at.value());
  EXPECT_GT(result.stats.utilization, 0.0);
}

TEST(Service, QueueOrderStableAcrossReruns) {
  const int slots = mnist_m4_footprint();
  std::vector<cs::JobRequest> requests;
  requests.push_back(mnist_request(9, cs::Priority::kStandard, 0.0));
  for (long id = 0; id < 6; ++id) {
    const auto cls = static_cast<cs::Priority>(id % 3);
    requests.push_back(mnist_request(id, cls, 1.0));
  }
  cs::ProvisioningService first(cr::Region({{"m4.xlarge", slots}}));
  cs::ProvisioningService second(cr::Region({{"m4.xlarge", slots}}));
  const auto a = first.run(requests);
  const auto b = second.run(requests);
  EXPECT_EQ(a.digest, b.digest);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].admitted_at.value(), b.outcomes[i].admitted_at.value());
    EXPECT_EQ(a.outcomes[i].completed_at.value(), b.outcomes[i].completed_at.value());
  }
}

TEST(Service, PatienceTimesOutQueuedJobs) {
  const int slots = mnist_m4_footprint();
  cs::ProvisioningService svc(cr::Region({{"m4.xlarge", slots}}));
  std::vector<cs::JobRequest> requests;
  requests.push_back(mnist_request(0, cs::Priority::kStandard, 0.0));
  requests.push_back(mnist_request(1, cs::Priority::kStandard, 0.0, /*patience=*/1.0));
  const auto result = svc.run(requests);
  EXPECT_EQ(result.outcomes[0].state, cs::JobState::kCompleted);
  EXPECT_EQ(result.outcomes[1].state, cs::JobState::kTimedOut);
  EXPECT_TRUE(result.outcomes[1].terminal_failure());
  EXPECT_EQ(result.stats.timed_out, 1);
  EXPECT_EQ(result.outcomes[1].reason, "patience exceeded");
}

TEST(Service, RejectsUnknownWorkloadAndImpossibleGoals) {
  cs::ProvisioningService svc(cr::Region::unbounded());
  std::vector<cs::JobRequest> requests;
  auto unknown = mnist_request(0, cs::Priority::kStandard, 0.0);
  unknown.workload = "no-such-model";
  requests.push_back(unknown);
  auto impossible = mnist_request(1, cs::Priority::kStandard, 0.0);
  impossible.workload = "vgg19";
  impossible.goal = co::ProvisionGoal{cu::Seconds{1.0}, 0.8};  // nothing is this fast
  requests.push_back(impossible);
  const auto result = svc.run(requests);
  EXPECT_EQ(result.stats.rejected, 2);
  EXPECT_EQ(result.outcomes[0].state, cs::JobState::kRejected);
  EXPECT_NE(result.outcomes[0].reason.find("unknown workload"), std::string::npos);
  EXPECT_EQ(result.outcomes[1].state, cs::JobState::kRejected);
  EXPECT_NE(result.outcomes[1].reason.find("no feasible plan"), std::string::npos);
}

TEST(Service, RejectsJobsThatCanNeverFitTheRegion) {
  // One docker cannot host a worker and a PS, so no mnist plan ever fits.
  cs::ProvisioningService svc(cr::Region({{"m4.xlarge", 1}}));
  const auto result = svc.run({mnist_request(0, cs::Priority::kStandard, 0.0)});
  EXPECT_EQ(result.outcomes[0].state, cs::JobState::kRejected);
  EXPECT_NE(result.outcomes[0].reason.find("exceeds region capacity"), std::string::npos);
}

TEST(Service, SingleJobPathBitIdenticalToTrainingService) {
  // On an unbounded region, submit() must reproduce the pre-fleet
  // orch::TrainingService::submit bit-for-bit (planning_seconds excepted:
  // it is host wall-clock, not simulated time).
  cs::ProvisioningService svc(cr::Region::unbounded());
  const auto& workload = cd::workload_by_name("mnist");
  const auto fleet_report = svc.submit(workload, kMnistGoal);
  cynthia::orch::TrainingService baseline;
  const auto direct_report = baseline.submit(workload, kMnistGoal);
  ASSERT_TRUE(fleet_report.has_value());
  ASSERT_TRUE(direct_report.has_value());

  EXPECT_EQ(fleet_report->plan.type.name, direct_report->plan.type.name);
  EXPECT_EQ(fleet_report->plan.n_workers, direct_report->plan.n_workers);
  EXPECT_EQ(fleet_report->plan.n_ps, direct_report->plan.n_ps);
  EXPECT_EQ(fleet_report->plan.total_iterations, direct_report->plan.total_iterations);
  EXPECT_EQ(fleet_report->plan.predicted_time.value(), direct_report->plan.predicted_time.value());
  EXPECT_EQ(fleet_report->plan.predicted_cost.value(), direct_report->plan.predicted_cost.value());
  EXPECT_EQ(fleet_report->profiling_seconds, direct_report->profiling_seconds);
  EXPECT_EQ(fleet_report->provisioning_seconds, direct_report->provisioning_seconds);
  EXPECT_EQ(fleet_report->training.iterations, direct_report->training.iterations);
  EXPECT_EQ(fleet_report->training.total_time, direct_report->training.total_time);
  EXPECT_EQ(fleet_report->achieved_loss, direct_report->achieved_loss);
  EXPECT_EQ(fleet_report->actual_cost.value(), direct_report->actual_cost.value());
  EXPECT_EQ(fleet_report->time_goal_met, direct_report->time_goal_met);
  EXPECT_EQ(fleet_report->loss_goal_met, direct_report->loss_goal_met);
}

TEST(Service, SingleJobSubmitChecksFiniteCapacity) {
  cs::ProvisioningService svc(cr::Region({{"m4.xlarge", 1}}));
  EXPECT_FALSE(svc.submit(cd::workload_by_name("mnist"), kMnistGoal).has_value());
}

TEST(Service, RunTwiceDigestIdenticalOn1kJobTrace) {
  const auto requests =
      cs::TrafficGenerator(cs::TrafficOptions::parse("jobs=1000,horizon=6h,seed=7")).generate();
  ASSERT_EQ(requests.size(), 1000u);
  const cr::Region region = cr::Region::parse("*=96");
  const auto a = cs::ProvisioningService(region).run(requests);
  const auto b = cs::ProvisioningService(region).run(requests);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.total_cost.value(), b.stats.total_cost.value());
  EXPECT_EQ(a.stats.queue_wait_p99.value(), b.stats.queue_wait_p99.value());
  EXPECT_GT(a.stats.completed, 0);
  EXPECT_GT(a.stats.slo_attain_rate, 0.0);
  EXPECT_GT(a.stats.utilization, 0.0);
}

TEST(Service, RevocationsAreDeterministicAndRecovered) {
  const auto requests =
      cs::TrafficGenerator(cs::TrafficOptions::parse("jobs=120,horizon=2h,seed=21")).generate();
  cs::ServeOptions opts;
  opts.mean_revocation_interval = cu::minutes(20.0);
  const cr::Region region = cr::Region::parse("*=96");
  const auto a = cs::ProvisioningService(region, cc::Catalog::aws(), opts).run(requests);
  const auto b = cs::ProvisioningService(region, cc::Catalog::aws(), opts).run(requests);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_GT(a.stats.revocations, 0);
  // Revoked jobs are re-admitted and carried to completion, never dropped.
  for (const auto& o : a.outcomes) {
    if (o.revocations > 0) {
      EXPECT_EQ(o.state, cs::JobState::kCompleted);
      EXPECT_GT(o.attempts, 1);
    }
  }
  EXPECT_EQ(a.stats.starved, 0);
}

TEST(Service, TelemetryLedgerReproducesFleetCostExactly) {
  const auto requests =
      cs::TrafficGenerator(cs::TrafficOptions::parse("jobs=60,horizon=1h,seed=4")).generate();
  const cr::Region region = cr::Region::parse("*=96");

  ct::Telemetry tel;
  const auto observed = cs::ProvisioningService(region).run(requests, &tel);
  const auto silent = cs::ProvisioningService(region).run(requests);
  // Attaching telemetry changes no outcome.
  EXPECT_EQ(observed.digest, silent.digest);

  // Bit-exact cost attribution: the ledger fold reproduces the fleet total.
  const ct::CostLedger ledger = ct::CostLedger::from(tel.journal);
  EXPECT_EQ(ledger.total().value(), observed.stats.total_cost.value());

  std::map<ct::JournalKind, long> kinds;
  for (const auto& rec : tel.journal.records()) kinds[rec.kind] += 1;
  EXPECT_EQ(kinds[ct::JournalKind::kJobSubmitted], observed.stats.submitted);
  EXPECT_EQ(kinds[ct::JournalKind::kJobAdmitted], observed.stats.attempts);
  EXPECT_EQ(kinds[ct::JournalKind::kJobCompleted], observed.stats.completed);
  EXPECT_EQ(kinds[ct::JournalKind::kJobRejected],
            observed.stats.rejected + observed.stats.timed_out + observed.stats.starved);

  // Fleet gauges mirror the stats rollup.
  EXPECT_DOUBLE_EQ(tel.metrics.gauge(ct::metric::kServiceSloAttainRate).value(),
                   observed.stats.slo_attain_rate);
  EXPECT_DOUBLE_EQ(tel.metrics.gauge(ct::metric::kServiceUtilization).value(),
                   observed.stats.utilization);
}

TEST(Service, OutcomesAccountEveryDollarAndSecond) {
  const auto requests =
      cs::TrafficGenerator(cs::TrafficOptions::parse("jobs=40,horizon=1h,seed=13")).generate();
  const auto result = cs::ProvisioningService(cr::Region::parse("*=96")).run(requests);
  long terminal = 0;
  for (const auto& o : result.outcomes) {
    EXPECT_NE(o.state, cs::JobState::kQueued);
    EXPECT_NE(o.state, cs::JobState::kRunning);
    terminal += 1;
    if (o.state == cs::JobState::kCompleted) {
      EXPECT_GT(o.cost.value(), 0.0);
      EXPECT_GT(o.provisioning.value(), 0.0);
      EXPECT_GE(o.completed_at.value(), o.admitted_at.value());
      EXPECT_EQ(o.slo_met,
                o.completed_at.value() - o.request.arrival.value() <= o.request.goal.time_goal.value());
    } else {
      EXPECT_TRUE(o.terminal_failure());
    }
  }
  EXPECT_EQ(terminal, result.stats.submitted);
}

TEST(Service, DuplicateJobIdsTripInvariantCheck) {
  ScopedInvariants on(true);
  cs::ProvisioningService svc(cr::Region::unbounded());
  std::vector<cs::JobRequest> requests;
  requests.push_back(mnist_request(3, cs::Priority::kStandard, 0.0));
  requests.push_back(mnist_request(3, cs::Priority::kStandard, 1.0));
  EXPECT_THROW(svc.run(requests), cu::CheckFailure);
}
