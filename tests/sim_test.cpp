// Unit + property tests for the discrete-event engine and the max-min fair
// fluid system — the substrate every experiment stands on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fluid.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cs = cynthia::sim;

// ------------------------------------------------------------ event queue

TEST(EventQueue, FiresInTimeOrder) {
  cs::EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  cs::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, FifoSurvivesCancellationAndInterleavedScheduling) {
  // The FIFO tie-break is a dedicated monotone sequence number, so it must
  // hold even when equal-time events are scheduled in bursts interleaved
  // with other timestamps, and when events in the middle of a tie group are
  // cancelled.
  cs::EventQueue q;
  std::vector<int> order;
  std::vector<cs::EventId> ties;
  for (int i = 0; i < 8; ++i) {
    ties.push_back(q.schedule(4.5, [&order, i] { order.push_back(i); }));
    q.schedule(1.0 + i, [&order, i] { order.push_back(100 + i); });
  }
  EXPECT_TRUE(q.cancel(ties[2]));
  EXPECT_TRUE(q.cancel(ties[5]));
  while (!q.empty()) q.pop().action();
  // Timestamps 1..4 first, then the eight-way 4.5 tie in scheduling order
  // (minus the two cancelled entries), then timestamps 5..8.
  EXPECT_EQ(order, (std::vector<int>{100, 101, 102, 103, 0, 1, 3, 4, 6, 7, 104, 105, 106, 107}));
}

TEST(EventQueue, PopReportsSchedulingOrderForEqualTimes) {
  cs::EventQueue q;
  const auto a = q.schedule(2.0, [] {});
  const auto b = q.schedule(2.0, [] {});
  const auto c = q.schedule(2.0, [] {});
  EXPECT_EQ(q.pop().id, a);
  EXPECT_EQ(q.pop().id, b);
  EXPECT_EQ(q.pop().id, c);
}

TEST(EventQueue, CancelSkipsEvent) {
  cs::EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  auto id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel is a no-op
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelFiredIsNoop) {
  cs::EventQueue q;
  auto id = q.schedule(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  cs::EventQueue q;
  auto a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
  q.pop();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyPopThrows) {
  cs::EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

// ------------------------------------------------------------- simulator

TEST(Simulator, ClockAdvancesWithEvents) {
  cs::Simulator sim;
  double seen = -1.0;
  sim.at(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, AfterIsRelative) {
  cs::Simulator sim;
  std::vector<double> times;
  sim.at(2.0, [&] {
    times.push_back(sim.now());
    sim.after(3.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{2.0, 5.0}));
}

TEST(Simulator, PastSchedulingThrows) {
  cs::Simulator sim;
  sim.at(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  cs::Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunawayGuardThrows) {
  cs::Simulator sim;
  std::function<void()> loop = [&] { sim.after(0.0, loop); };
  sim.after(0.0, loop);
  EXPECT_THROW(sim.run(1000), std::runtime_error);
}

// ------------------------------------------------------------ fluid: basics

TEST(Fluid, SingleJobRunsAtCapacity) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto r = fs.add_resource("cpu", 2.0);
  double finish = -1.0;
  fs.start_job(10.0, {r}, [&](double t) { finish = t; });
  sim.run();
  EXPECT_NEAR(finish, 5.0, 1e-6);
}

TEST(Fluid, TwoJobsShareEqually) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto r = fs.add_resource("link", 10.0);
  std::vector<double> finishes;
  fs.start_job(10.0, {r}, [&](double t) { finishes.push_back(t); });
  fs.start_job(10.0, {r}, [&](double t) { finishes.push_back(t); });
  sim.run();
  ASSERT_EQ(finishes.size(), 2u);
  // Each gets 5 units/s: both finish at t=2.
  EXPECT_NEAR(finishes[0], 2.0, 1e-6);
  EXPECT_NEAR(finishes[1], 2.0, 1e-6);
}

TEST(Fluid, ShorterJobReleasesCapacity) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto r = fs.add_resource("link", 10.0);
  double short_f = -1, long_f = -1;
  fs.start_job(5.0, {r}, [&](double t) { short_f = t; });
  fs.start_job(20.0, {r}, [&](double t) { long_f = t; });
  sim.run();
  // Shared at 5/s until t=1 (short done), then long runs alone:
  // long has 15 left at t=1 -> finishes at t=2.5.
  EXPECT_NEAR(short_f, 1.0, 1e-6);
  EXPECT_NEAR(long_f, 2.5, 1e-6);
}

TEST(Fluid, MultiResourceJobLimitedByTightestLink) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto wide = fs.add_resource("wide", 100.0);
  auto narrow = fs.add_resource("narrow", 5.0);
  double finish = -1;
  fs.start_job(10.0, {wide, narrow}, [&](double t) { finish = t; });
  sim.run();
  EXPECT_NEAR(finish, 2.0, 1e-6);
}

TEST(Fluid, ZeroVolumeCompletesViaEventQueue) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  fs.add_resource("r", 1.0);
  bool done = false;
  fs.start_job(0.0, {}, [&](double) { done = true; });
  EXPECT_FALSE(done);  // not synchronous
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Fluid, InvalidInputsThrow) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  EXPECT_THROW(fs.add_resource("bad", 0.0), std::invalid_argument);
  auto r = fs.add_resource("ok", 1.0);
  EXPECT_THROW(fs.start_job(1.0, {}, nullptr), std::invalid_argument);
  EXPECT_THROW(fs.start_job(1.0, {r + 100}, nullptr), std::out_of_range);
}

TEST(Fluid, CancelJobFreesCapacity) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto r = fs.add_resource("link", 10.0);
  double keep_f = -1;
  auto cancel_me = fs.start_job(1000.0, {r}, [&](double) { FAIL() << "cancelled job completed"; });
  fs.start_job(10.0, {r}, [&](double t) { keep_f = t; });
  sim.after(1.0, [&] { fs.cancel_job(cancel_me); });
  sim.run();
  // Shared 5/s for 1s (5 done), then full 10/s for remaining 5 -> t=1.5.
  EXPECT_NEAR(keep_f, 1.5, 1e-6);
}

TEST(Fluid, JobRemainingAndRateQueries) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto r = fs.add_resource("link", 4.0);
  auto id = fs.start_job(8.0, {r}, nullptr);
  EXPECT_DOUBLE_EQ(fs.job_rate(id), 4.0);
  sim.run_until(1.0);
  EXPECT_NEAR(fs.job_remaining(id), 4.0, 1e-6);
  sim.run();
  EXPECT_DOUBLE_EQ(fs.job_remaining(id), 0.0);
  EXPECT_DOUBLE_EQ(fs.job_rate(id), 0.0);
}

// ------------------------------------------------ fluid: max-min property

namespace {

/// Randomized topology: jobs crossing random subsets of links. Verifies the
/// two defining max-min properties on the instantaneous allocation:
/// feasibility (no link over capacity) and bottleneck justification (every
/// job is capped by at least one saturated link, or runs at link speed).
void check_maxmin_invariants(std::uint64_t seed) {
  cynthia::util::Rng rng(seed);
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  const int n_links = static_cast<int>(rng.uniform_int(2, 6));
  std::vector<cs::ResourceId> links;
  std::vector<double> caps;
  for (int i = 0; i < n_links; ++i) {
    const double cap = rng.uniform(1.0, 20.0);
    links.push_back(fs.add_resource("l" + std::to_string(i), cap));
    caps.push_back(cap);
  }
  const int n_jobs = static_cast<int>(rng.uniform_int(2, 10));
  std::vector<cs::JobId> jobs;
  std::vector<std::vector<cs::ResourceId>> paths;
  for (int j = 0; j < n_jobs; ++j) {
    std::vector<cs::ResourceId> path;
    for (int l = 0; l < n_links; ++l) {
      if (rng.chance(0.4)) path.push_back(links[l]);
    }
    if (path.empty()) path.push_back(links[0]);
    paths.push_back(path);
    jobs.push_back(fs.start_job(1e9, path, nullptr));  // long-lived
  }

  // Feasibility.
  for (int l = 0; l < n_links; ++l) {
    EXPECT_LE(fs.resource_used(links[l]), caps[l] + 1e-6);
  }
  // Bottleneck justification: each job crosses some link that is saturated
  // and on which the job's rate is maximal among that link's jobs.
  for (int j = 0; j < n_jobs; ++j) {
    const double rate = fs.job_rate(jobs[j]);
    EXPECT_GT(rate, 0.0);
    bool justified = false;
    for (auto l : paths[j]) {
      if (fs.resource_used(l) < fs.resource_capacity(l) - 1e-6) continue;
      // saturated link: is this job among its fastest?
      bool is_max = true;
      for (int k = 0; k < n_jobs; ++k) {
        if (std::find(paths[k].begin(), paths[k].end(), l) == paths[k].end()) continue;
        if (fs.job_rate(jobs[k]) > rate + 1e-6) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "job " << j << " rate " << rate << " not bottleneck-justified";
  }
}

}  // namespace

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, AllocationIsMaxMinFair) { check_maxmin_invariants(GetParam()); }

INSTANTIATE_TEST_SUITE_P(RandomTopologies, MaxMinProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// ----------------------------------------------- fluid: conservation laws

class FluidConservation : public ::testing::TestWithParam<int> {};

TEST_P(FluidConservation, ServedVolumeEqualsInjectedVolume) {
  const int n_jobs = GetParam();
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto link = fs.add_resource("link", 7.0, /*trace bucket=*/0.5);
  cynthia::util::Rng rng(n_jobs * 1000 + 7);
  double injected = 0.0;
  int completed = 0;
  for (int j = 0; j < n_jobs; ++j) {
    const double vol = rng.uniform(0.5, 30.0);
    injected += vol;
    const double start = rng.uniform(0.0, 5.0);
    sim.at(start, [&fs, &completed, vol, link] {
      fs.start_job(vol, {link}, [&completed](double) { ++completed; });
    });
  }
  sim.run();
  EXPECT_EQ(completed, n_jobs);
  EXPECT_NEAR(fs.resource_volume_served(link), injected, injected * 1e-6 + 1e-6);
  // Trace agrees with the busy integral.
  const auto* trace = fs.resource_trace(link);
  ASSERT_NE(trace, nullptr);
  EXPECT_NEAR(trace->total_volume(), injected, injected * 1e-6 + 1e-6);
  // Utilization is consistent: served / (capacity * makespan).
  const double util = fs.resource_utilization(link, sim.now());
  EXPECT_NEAR(util, injected / (7.0 * sim.now()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(JobCounts, FluidConservation, ::testing::Values(1, 2, 5, 10, 25, 60));

TEST(Fluid, TraceIncludesTheOpenSegment) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto link = fs.add_resource("link", 2.0, /*trace bucket=*/0.5);
  bool done = false;
  fs.start_job(20.0, {link}, [&done](double) { done = true; });  // 10 s at full rate
  sim.run_until(3.0);
  ASSERT_FALSE(done);
  // No settle has happened since the allocation, yet the trace read must
  // cover the open segment [0, now) instead of stopping at the last settle.
  const auto* trace = fs.resource_trace(link);
  ASSERT_NE(trace, nullptr);
  EXPECT_NEAR(trace->end_time(), 3.0, 1e-9);
  EXPECT_NEAR(trace->total_volume(), 6.0, 1e-9);
  sim.run();
  EXPECT_TRUE(done);
  // After the queue drains the trace reaches the completion and conserves
  // the full injected volume (up to the scheduler's completion slack).
  EXPECT_NEAR(fs.resource_trace(link)->total_volume(), 20.0, 1e-6);
}

TEST(Fluid, CompletionOrderRespectsVolumes) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto r = fs.add_resource("r", 1.0);
  std::vector<int> order;
  fs.start_job(3.0, {r}, [&](double) { order.push_back(3); });
  fs.start_job(1.0, {r}, [&](double) { order.push_back(1); });
  fs.start_job(2.0, {r}, [&](double) { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fluid, CallbackCanStartNewJobs) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto r = fs.add_resource("r", 1.0);
  int chain = 0;
  std::function<void(double)> next = [&](double) {
    if (++chain < 5) fs.start_job(1.0, {r}, next);
  };
  fs.start_job(1.0, {r}, next);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_NEAR(sim.now(), 5.0, 1e-5);
}

TEST(Fluid, UtilizationOfIdleResourceIsZero) {
  cs::Simulator sim;
  cs::FluidSystem fs(sim);
  auto r = fs.add_resource("idle", 3.0);
  auto busy = fs.add_resource("busy", 3.0);
  fs.start_job(9.0, {busy}, nullptr);
  sim.run();
  EXPECT_DOUBLE_EQ(fs.resource_utilization(r, sim.now()), 0.0);
  EXPECT_NEAR(fs.resource_utilization(busy, sim.now()), 1.0, 1e-9);
}
