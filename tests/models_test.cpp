// Unit tests for the layer IR, shape inference, FLOP/parameter counting,
// and the model zoo's agreement with the paper's workloads.
#include <gtest/gtest.h>

#include "models/layer.hpp"
#include "models/network.hpp"
#include "models/zoo.hpp"

namespace cm = cynthia::models;

// ----------------------------------------------------------- layer math

TEST(LayerMath, ConvOutputSamePadding) {
  cm::Shape in{32, 32, 3};
  auto out = cm::conv2d_output(in, 64, 3, 1);
  EXPECT_EQ(out, (cm::Shape{32, 32, 64}));
  out = cm::conv2d_output(in, 64, 3, 2);
  EXPECT_EQ(out, (cm::Shape{16, 16, 64}));
  out = cm::conv2d_output({5, 5, 1}, 8, 3, 2);  // ceil(5/2) = 3
  EXPECT_EQ(out, (cm::Shape{3, 3, 8}));
}

TEST(LayerMath, ConvParamsAndFlops) {
  cm::Shape in{32, 32, 3};
  // 3x3x3x64 weights + 64 biases.
  EXPECT_EQ(cm::conv2d_params(in, 64, 3), 3 * 3 * 3 * 64 + 64);
  // 2 * H*W*K*K*Cin*Cout MACs at stride 1.
  EXPECT_EQ(cm::conv2d_forward_flops(in, 64, 3, 1), 2LL * 32 * 32 * 64 * 3 * 3 * 3);
}

TEST(LayerMath, DenseParamsAndFlops) {
  EXPECT_EQ(cm::dense_params(784, 100), 784 * 100 + 100);
  EXPECT_EQ(cm::dense_forward_flops(784, 100), 2 * 784 * 100);
}

TEST(LayerMath, PoolOutput) {
  EXPECT_EQ(cm::pool_output({32, 32, 64}, 3, 2), (cm::Shape{16, 16, 64}));
}

TEST(LayerMath, InvalidGeometryThrows) {
  EXPECT_THROW(cm::conv2d_output({8, 8, 3}, 0, 3, 1), std::invalid_argument);
  EXPECT_THROW(cm::conv2d_output({8, 8, 3}, 4, 3, 0), std::invalid_argument);
  EXPECT_THROW(cm::pool_output({8, 8, 3}, -1, 2), std::invalid_argument);
}

TEST(Layer, BackwardFlopsRule) {
  cm::Layer with_params;
  with_params.params = 10;
  with_params.forward_flops = 100;
  EXPECT_EQ(with_params.backward_flops(), 200);
  EXPECT_EQ(with_params.training_flops(), 300);
  cm::Layer no_params;
  no_params.forward_flops = 100;
  EXPECT_EQ(no_params.backward_flops(), 100);
  EXPECT_EQ(no_params.training_flops(), 200);
}

// -------------------------------------------------------------- builder

TEST(NetworkBuilder, ShapeInferenceThreadsThrough) {
  auto net = cm::NetworkBuilder("t")
                 .input(28, 28, 1)
                 .conv2d(32, 3)
                 .max_pool(2, 2)
                 .flatten()
                 .dense(10)
                 .build();
  EXPECT_EQ(net.input_shape(), (cm::Shape{28, 28, 1}));
  EXPECT_EQ(net.output_shape(), (cm::Shape{1, 1, 10}));
  // Flatten must have seen 14*14*32.
  EXPECT_EQ(net.layers()[3].out.c, 14 * 14 * 32);
}

TEST(NetworkBuilder, RequiresInputFirst) {
  cm::NetworkBuilder b("t");
  EXPECT_THROW(b.dense(10), std::logic_error);
}

TEST(NetworkBuilder, DoubleInputThrows) {
  cm::NetworkBuilder b("t");
  b.input(8, 8, 1);
  EXPECT_THROW(b.input(8, 8, 1), std::logic_error);
}

TEST(NetworkBuilder, UnclosedBlockThrows) {
  cm::NetworkBuilder b("t");
  b.input(8, 8, 4).begin_block().conv2d(4, 3);
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(NetworkBuilder, ResidualAddKeepsShape) {
  auto net = cm::NetworkBuilder("t")
                 .input(8, 8, 16)
                 .begin_block()
                 .conv2d(16, 3)
                 .conv2d(16, 3)
                 .end_block_add()
                 .build();
  EXPECT_EQ(net.output_shape(), (cm::Shape{8, 8, 16}));
  EXPECT_EQ(net.layers().back().kind, cm::LayerKind::Add);
}

TEST(NetworkBuilder, ProjectionShortcutAddsConvParams) {
  // Stride-2 block: shortcut needs a 1x1 projection conv.
  auto plain = cm::NetworkBuilder("p")
                   .input(8, 8, 16)
                   .conv2d(32, 3, 2)
                   .build();
  auto res = cm::NetworkBuilder("r")
                 .input(8, 8, 16)
                 .begin_block()
                 .conv2d(32, 3, 2)
                 .end_block_add()
                 .build();
  // Projection adds 1x1x16x32 + 32 params over the plain conv.
  EXPECT_EQ(res.total_params() - plain.total_params(), 16 * 32 + 32);
  EXPECT_EQ(res.output_shape(), (cm::Shape{4, 4, 32}));
}

TEST(NetworkDef, AggregatesMatchLayerSums) {
  auto net = cm::build_cifar10_dnn();
  std::int64_t params = 0, fwd = 0;
  for (const auto& l : net.layers()) {
    params += l.params;
    fwd += l.forward_flops;
  }
  EXPECT_EQ(net.total_params(), params);
  EXPECT_EQ(net.forward_flops_per_sample(), fwd);
  EXPECT_GT(net.training_flops_per_sample(), net.forward_flops_per_sample());
}

TEST(NetworkDef, SummaryMentionsEveryLayer) {
  auto net = cm::build_mnist_dnn();
  const auto s = net.summary();
  for (const auto& l : net.layers()) {
    EXPECT_NE(s.find(l.name), std::string::npos) << l.name;
  }
}

// ------------------------------------------------------------------ zoo

TEST(Zoo, BuildByName) {
  EXPECT_EQ(cm::build_by_name("mnist").name(), "mnist-dnn");
  EXPECT_EQ(cm::build_by_name("resnet-32").name(), "resnet-32");
  EXPECT_THROW(cm::build_by_name("bert-large"), std::invalid_argument);
}

TEST(Zoo, MnistMatchesPaperParameterPayload) {
  // Paper Table 4: g_param = 0.33 MB. The 784-100-10 MLP has 79,510
  // parameters = 0.318 MB fp32.
  auto net = cm::build_mnist_dnn();
  EXPECT_EQ(net.total_params(), 784 * 100 + 100 + 100 * 10 + 10);
  EXPECT_NEAR(net.param_megabytes().value(), 0.33, 0.05);
}

TEST(Zoo, Cifar10DnnNearPaperPayload) {
  // Paper Table 4: 4.94 MB. The TF tutorial net is ~1.07M params = 4.3 MB.
  auto net = cm::build_cifar10_dnn();
  EXPECT_GT(net.param_megabytes().value(), 3.0);
  EXPECT_LT(net.param_megabytes().value(), 6.5);
}

TEST(Zoo, Resnet32HasThirtyTwoWeightedConvDenseLayers) {
  auto net = cm::build_resnet32();
  int weighted = 0;
  for (const auto& l : net.layers()) {
    // Count conv + dense on the main path (projection shortcuts excluded:
    // they are the 1x1 convs, kernel == 1).
    if (l.kind == cm::LayerKind::Conv2D && l.kernel > 1) ++weighted;
    if (l.kind == cm::LayerKind::Dense) ++weighted;
  }
  EXPECT_EQ(weighted, 32);
  // CIFAR ResNet-32 is famously ~0.46M parameters (~1.9 MB); the paper
  // profiled 2.22 MB on the wire.
  EXPECT_NEAR(net.param_megabytes().value(), 1.9, 0.4);
}

TEST(Zoo, Vgg19HasNineteenWeightLayers) {
  auto net = cm::build_vgg19();
  int weighted = 0;
  for (const auto& l : net.layers()) {
    if (l.kind == cm::LayerKind::Conv2D || l.kind == cm::LayerKind::Dense) ++weighted;
  }
  EXPECT_EQ(weighted, 19);
  // Dominated by the dense head; paper profiled 135.84 MB.
  EXPECT_GT(net.param_megabytes().value(), 100.0);
  EXPECT_LT(net.param_megabytes().value(), 200.0);
}

TEST(Zoo, RelativeComputeOrdering) {
  // Per-sample training cost must order mnist << cifar10 < resnet32 < vgg19,
  // consistent with Table 4's w_iter ordering after batch normalization
  // (mnist/cifar batch 512, resnet/vgg batch 128).
  const auto mnist = cm::build_mnist_dnn().training_flops_per_sample();
  const auto cifar = cm::build_cifar10_dnn().training_flops_per_sample();
  const auto resnet = cm::build_resnet32().training_flops_per_sample();
  const auto vgg = cm::build_vgg19().training_flops_per_sample();
  EXPECT_LT(mnist * 20, cifar);
  EXPECT_LT(cifar, resnet);
  EXPECT_LT(resnet, vgg);
}

TEST(Zoo, PerIterationGFlopsScaleWithBatch) {
  auto net = cm::build_cifar10_dnn();
  const double one = net.training_gflops_per_iteration(1).value();
  const double many = net.training_gflops_per_iteration(512).value();
  EXPECT_NEAR(many, 512.0 * one, 1e-9);
}
