// Unit tests for the util library: units, rng, stats, least squares,
// table/CSV formatting, rate traces, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/least_squares.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/time_series.hpp"
#include "util/units.hpp"

namespace cu = cynthia::util;

// ---------------------------------------------------------------- units

TEST(Units, ArithmeticAndComparison) {
  cu::GFlops a{10.0}, b{2.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 12.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 7.5);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 20.0);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, cu::GFlops{10.0});
}

TEST(Units, CompoundAssignment) {
  cu::MegaBytes m{1.0};
  m += cu::MegaBytes{2.0};
  EXPECT_DOUBLE_EQ(m.value(), 3.0);
  m -= cu::MegaBytes{0.5};
  EXPECT_DOUBLE_EQ(m.value(), 2.5);
}

TEST(Units, PhysicalCrossUnitOps) {
  // 10 GFLOPs at 2 GFLOPS takes 5 s.
  EXPECT_DOUBLE_EQ((cu::GFlops{10} / cu::GFlopsRate{2}).value(), 5.0);
  // 100 MB at 50 MB/s takes 2 s.
  EXPECT_DOUBLE_EQ((cu::MegaBytes{100} / cu::MBps{50}).value(), 2.0);
  // rate x time = volume, both orders.
  EXPECT_DOUBLE_EQ((cu::GFlopsRate{2} * cu::Seconds{3}).value(), 6.0);
  EXPECT_DOUBLE_EQ((cu::Seconds{3} * cu::MBps{4}).value(), 12.0);
  // $0.36/h for 100 s costs one cent.
  EXPECT_NEAR((cu::DollarsPerHour{0.36} * cu::Seconds{100}).value(), 0.01, 1e-12);
}

TEST(Units, MinutesHoursHelpers) {
  EXPECT_DOUBLE_EQ(cu::minutes(2).value(), 120.0);
  EXPECT_DOUBLE_EQ(cu::hours(1.5).value(), 5400.0);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  cu::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  cu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  cu::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  cu::Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BoundedNormalRespectsBound) {
  cu::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.bounded_normal(1.0, 0.5, 0.2);
    EXPECT_GE(x, 0.8);
    EXPECT_LE(x, 1.2);
  }
}

TEST(Rng, JitterAroundUnity) {
  cu::Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double j = rng.jitter(0.1);
    EXPECT_GE(j, 0.9);
    EXPECT_LE(j, 1.1);
    sum += j;
  }
  EXPECT_NEAR(sum / 5000.0, 1.0, 0.01);
}

TEST(Rng, ChanceExtremes) {
  cu::Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanVarianceMinMax) {
  cu::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  cu::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  cu::RunningStats a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(cu::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(cu::percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(cu::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(cu::percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(cu::median(xs), 3.0);
}

TEST(Stats, MapeSkipsZeroObservations) {
  std::vector<double> obs{100, 0, 200};
  std::vector<double> pred{110, 50, 180};
  // (10% + 10%) / 2 = 10%.
  EXPECT_NEAR(cu::mape_percent(obs, pred), 10.0, 1e-9);
}

TEST(Stats, MapeSizeMismatchThrows) {
  std::vector<double> a{1.0}, b{1.0, 2.0};
  EXPECT_THROW(cu::mape_percent(a, b), std::invalid_argument);
}

TEST(Stats, RSquaredPerfectAndPoor) {
  std::vector<double> obs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(cu::r_squared(obs, obs), 1.0);
  std::vector<double> flat{2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(cu::r_squared(obs, flat), 0.0, 1e-12);
}

TEST(Stats, RelativeError) {
  EXPECT_NEAR(cu::relative_error_percent(200.0, 210.0), 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(cu::relative_error_percent(0.0, 5.0), 0.0);
}

// ------------------------------------------------------- least squares

TEST(LeastSquares, SolvesExactSystem) {
  cu::Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  auto x = cu::solve_linear_system(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(LeastSquares, SingularThrows) {
  cu::Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(cu::solve_linear_system(a, {1, 2}), std::runtime_error);
}

TEST(LeastSquares, RecoversLinearCoefficients) {
  // y = 3 + 2x sampled exactly.
  cu::Matrix x(5, 2);
  std::vector<double> y(5);
  for (int i = 0; i < 5; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = i;
    y[i] = 3.0 + 2.0 * i;
  }
  auto beta = cu::least_squares(x, y);
  EXPECT_NEAR(beta[0], 3.0, 1e-6);
  EXPECT_NEAR(beta[1], 2.0, 1e-6);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  cu::Matrix x(1, 2);
  std::vector<double> y{1.0};
  EXPECT_THROW(cu::least_squares(x, y), std::invalid_argument);
}

TEST(Nnls, ClampsNegativeCoefficients) {
  // y = -1 * x best fit is negative; NNLS must return 0.
  cu::Matrix x(3, 1);
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  auto beta = cu::nnls(x, std::vector<double>{-1, -2, -3});
  EXPECT_DOUBLE_EQ(beta[0], 0.0);
}

TEST(Nnls, MatchesOlsWhenPositive) {
  cu::Matrix x(4, 2);
  std::vector<double> y(4);
  for (int i = 0; i < 4; ++i) {
    x(i, 0) = 1.0;
    x(i, 1) = i + 1.0;
    y[i] = 0.5 + 1.5 * (i + 1.0);
  }
  auto beta = cu::nnls(x, y);
  EXPECT_NEAR(beta[0], 0.5, 1e-5);
  EXPECT_NEAR(beta[1], 1.5, 1e-5);
}

TEST(Polyfit, QuadraticExact) {
  std::vector<double> t{0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double v : t) y.push_back(1.0 - 2.0 * v + 0.5 * v * v);
  auto c = cu::polyfit(t, y, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 1.0, 1e-8);
  EXPECT_NEAR(c[1], -2.0, 1e-8);
  EXPECT_NEAR(c[2], 0.5, 1e-8);
  EXPECT_NEAR(cu::polyval(c, 10.0), 1.0 - 20.0 + 50.0, 1e-6);
}

TEST(GaussNewton, FitsExponentialDecay) {
  // y = a * exp(-b x), a=4, b=0.5.
  auto f = [](std::span<const double> p, double x) { return p[0] * std::exp(-p[1] * x); };
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i * 0.3);
    ys.push_back(4.0 * std::exp(-0.5 * i * 0.3));
  }
  auto r = cu::gauss_newton(f, xs, ys, {1.0, 1.0});
  EXPECT_NEAR(r.params[0], 4.0, 1e-4);
  EXPECT_NEAR(r.params[1], 0.5, 1e-4);
  EXPECT_LT(r.final_rss, 1e-8);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedCells) {
  cu::Table t("Demo");
  t.header({"a", "long-column"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("long-column"), std::string::npos);
  EXPECT_NE(s.find("| 333 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(cu::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(cu::Table::pct(42.345, 1), "42.3%");
}

TEST(Table, RaggedRowsPadded) {
  cu::Table t;
  t.header({"x", "y", "z"});
  t.row({"only-one"});
  EXPECT_NO_THROW(t.to_string());
}

// ---------------------------------------------------------------- csv

TEST(Csv, WritesAndEscapes) {
  const auto path = std::filesystem::temp_directory_path() / "cynthia_csv_test.csv";
  {
    cu::CsvWriter w(path.string());
    w.header({"name", "value"});
    w.row({"plain", "1"});
    w.row({"with,comma", "quote\"inside"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
  std::filesystem::remove(path);
}

TEST(Csv, NumericRows) {
  const auto path = std::filesystem::temp_directory_path() / "cynthia_csv_num.csv";
  {
    cu::CsvWriter w(path.string());
    w.row_numeric({1.5, 2.25});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.25");
  std::filesystem::remove(path);
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(cu::CsvWriter("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

// ----------------------------------------------------------- rate trace

TEST(RateTrace, IntegratesIntoBuckets) {
  cu::RateTrace t(1.0);
  t.add_segment(0.0, 0.5, 10.0);  // 5 units in bucket 0
  t.add_segment(0.5, 2.0, 2.0);   // 1 unit in bucket 0, 2 in bucket 1
  auto b = t.buckets();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_NEAR(b[0].value, 6.0, 1e-9);
  EXPECT_NEAR(b[1].value, 2.0, 1e-9);
  EXPECT_NEAR(t.total_volume(), 8.0, 1e-9);
  EXPECT_NEAR(t.average(), 4.0, 1e-9);
  EXPECT_NEAR(t.peak(), 6.0, 1e-9);
}

TEST(RateTrace, ZeroRateSegmentsExtendTime) {
  cu::RateTrace t(1.0);
  t.add_segment(0.0, 1.0, 4.0);
  t.add_segment(1.0, 4.0, 0.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 4.0);
  EXPECT_NEAR(t.average(), 1.0, 1e-9);
  EXPECT_EQ(t.buckets().size(), 4u);
}

TEST(RateTrace, EmptySegmentIgnored) {
  cu::RateTrace t(1.0);
  t.add_segment(1.0, 1.0, 100.0);
  EXPECT_DOUBLE_EQ(t.total_volume(), 0.0);
  EXPECT_TRUE(t.buckets().empty());
}

TEST(RateTrace, InvalidBucketWidthThrows) {
  EXPECT_THROW(cu::RateTrace(0.0), std::invalid_argument);
}

TEST(RateTrace, VolumeConservedAcrossBucketBoundaries) {
  cu::RateTrace t(0.7);
  double expected = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double t0 = i * 0.31;
    const double t1 = t0 + 0.31;
    const double rate = (i % 5) * 1.7;
    t.add_segment(t0, t1, rate);
    expected += rate * 0.31;
  }
  double bucket_volume = 0.0;
  for (const auto& b : t.buckets()) bucket_volume += b.value * b.width;
  EXPECT_NEAR(bucket_volume, expected, 1e-6);
  EXPECT_NEAR(t.total_volume(), expected, 1e-6);
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPool, RunsSubmittedTasks) {
  cu::ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  cu::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  cu::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksComplete) {
  cu::ThreadPool pool(8);
  std::atomic<long> total{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&total, i] { total.fetch_add(i); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(total.load(), 500L * 499 / 2);
}

// ---------------------------------------------------------------- log

TEST(Log, LevelThresholdRespected) {
  const auto prev = cu::log_level();
  cu::set_log_level(cu::LogLevel::Error);
  EXPECT_EQ(cu::log_level(), cu::LogLevel::Error);
  // No crash on suppressed and emitted paths.
  cu::log_message(cu::LogLevel::Debug, "test", "suppressed");
  cu::log_message(cu::LogLevel::Error, "test", "emitted");
  cu::Logger logger("test");
  logger.debug() << "suppressed " << 42;
  cu::set_log_level(prev);
}

TEST(Log, LevelNames) {
  EXPECT_EQ(cu::to_string(cu::LogLevel::Debug), "DEBUG");
  EXPECT_EQ(cu::to_string(cu::LogLevel::Warn), "WARN");
  EXPECT_EQ(cu::to_string(cu::LogLevel::Off), "OFF");
}

TEST(Log, ParseLevelAcceptsAnyCaseAndAliases) {
  EXPECT_EQ(cu::parse_log_level("debug"), cu::LogLevel::Debug);
  EXPECT_EQ(cu::parse_log_level("INFO"), cu::LogLevel::Info);
  EXPECT_EQ(cu::parse_log_level("Warning"), cu::LogLevel::Warn);
  EXPECT_EQ(cu::parse_log_level("error"), cu::LogLevel::Error);
  EXPECT_EQ(cu::parse_log_level("none"), cu::LogLevel::Off);
  EXPECT_EQ(cu::parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(cu::parse_log_level(""), std::nullopt);
}

TEST(Log, TimestampToggle) {
  const bool prev = cu::log_timestamps();
  cu::set_log_timestamps(true);
  EXPECT_TRUE(cu::log_timestamps());
  cu::log_message(cu::LogLevel::Error, "test", "timestamped line, no crash");
  cu::set_log_timestamps(prev);
}
