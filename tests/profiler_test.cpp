// Tests for the one-shot baseline profiler (Sec. 3 "Obtaining model
// parameters" + the Sec. 5.3 overhead claims).
#include <gtest/gtest.h>

#include "cloud/instance.hpp"
#include "ddnn/workload.hpp"
#include "profiler/profiler.hpp"

namespace cp = cynthia::profiler;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }
}  // namespace

TEST(Profiler, RecoversWiterFromComputePhase) {
  // w_iter = t_base * c_base must reproduce the workload's configured
  // per-iteration FLOPs (the compute phase is cleanly separable).
  for (const char* name : {"cifar10", "resnet32", "vgg19"}) {
    const auto& w = cd::workload_by_name(name);
    const auto p = cp::profile_workload(w, m4());
    EXPECT_NEAR(p.witer.value(), w.witer.value(), w.witer.value() * 0.03) << name;
    EXPECT_EQ(p.workload, name);
    EXPECT_EQ(p.baseline_type, "m4.xlarge");
    EXPECT_EQ(p.iterations, 30);
  }
}

TEST(Profiler, GparamIncludesWireOverhead) {
  const auto& w = cd::workload_by_name("cifar10");
  cp::ProfileOptions o;
  const auto p = cp::profile_workload(w, m4(), o);
  // Measured payload = parameters x wire framing factor: the measured value
  // is what actually crosses the PS NIC, keeping predictions consistent.
  EXPECT_NEAR(p.gparam.value(), w.gparam.value() * o.wire_overhead,
              w.gparam.value() * o.wire_overhead * 0.05);
}

TEST(Profiler, ProfilingTimesMatchPaperSection53) {
  // Paper: mnist 0.9 s, cifar10 4.0 min, ResNet-32 6.0 min, VGG-19
  // 10.4 min for 30 iterations on one m4.xlarge worker. Generous bands —
  // the shape (relative ordering and magnitude) is what matters.
  const auto mnist = cp::profile_workload(cd::workload_by_name("mnist"), m4());
  EXPECT_LT(mnist.profiling_time.value(), 5.0);
  const auto cifar = cp::profile_workload(cd::workload_by_name("cifar10"), m4());
  EXPECT_NEAR(cifar.profiling_time.value(), 4.0 * 60, 60.0);
  const auto resnet = cp::profile_workload(cd::workload_by_name("resnet32"), m4());
  EXPECT_NEAR(resnet.profiling_time.value(), 6.0 * 60, 60.0);
  const auto vgg = cp::profile_workload(cd::workload_by_name("vgg19"), m4());
  EXPECT_NEAR(vgg.profiling_time.value(), 10.4 * 60, 120.0);
}

TEST(Profiler, CprofBprofPositiveAndSane) {
  const auto& w = cd::workload_by_name("mnist");
  const auto p = cp::profile_workload(w, m4());
  EXPECT_GT(p.cprof.value(), 0.0);
  EXPECT_LE(p.cprof.value(), m4().core_gflops.value() + 1e-9);
  EXPECT_GT(p.bprof.value(), 0.0);
  EXPECT_LE(p.bprof.value(), 2.0 * m4().nic_mbps.value() + 1e-9);
}

TEST(Profiler, MnistIsPsHeavyPerUnitTime) {
  // Table 4's signature: mnist has by far the highest c_prof and b_prof
  // rates (tiny iterations hammer the PS), despite the smallest w_iter.
  const auto mnist = cp::profile_workload(cd::workload_by_name("mnist"), m4());
  const auto resnet = cp::profile_workload(cd::workload_by_name("resnet32"), m4());
  EXPECT_GT(mnist.cprof.value(), 5.0 * resnet.cprof.value());
  EXPECT_GT(mnist.bprof.value(), 5.0 * resnet.bprof.value());
  EXPECT_LT(mnist.witer.value(), resnet.witer.value());
}

TEST(Profiler, DifferentBaselineTypeScalesWiterConsistently) {
  // Profiling on a slower baseline must still recover the same FLOP count
  // (t_base grows, c_base shrinks) — the Fig. 8 cross-type premise.
  const auto& w = cd::workload_by_name("cifar10");
  const auto on_m4 = cp::profile_workload(w, m4());
  const auto on_r3 = cp::profile_workload(w, cc::Catalog::aws().at("r3.xlarge"));
  EXPECT_NEAR(on_m4.witer.value(), on_r3.witer.value(), on_m4.witer.value() * 0.05);
  EXPECT_GT(on_r3.tbase_iter.value(), on_m4.tbase_iter.value());
}

TEST(Profiler, CustomIterationCount) {
  const auto& w = cd::workload_by_name("cifar10");
  cp::ProfileOptions o;
  o.iterations = 10;
  const auto p = cp::profile_workload(w, m4(), o);
  EXPECT_EQ(p.iterations, 10);
  EXPECT_THROW(cp::profile_workload(w, m4(), {.iterations = 0}), std::invalid_argument);
}
