// Cross-module integration tests: the full Cynthia pipeline against the
// simulated EC2 testbed, plus the headline claims of the paper at reduced
// iteration counts (the benches reproduce them at full scale).
#include <gtest/gtest.h>

#include "baselines/optimus_provisioner.hpp"
#include "baselines/paleo.hpp"
#include "cloud/instance.hpp"
#include "core/predictor.hpp"
#include "core/provisioner.hpp"
#include "ddnn/loss.hpp"
#include "ddnn/trainer.hpp"
#include "orchestrator/service.hpp"
#include "profiler/profiler.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cb = cynthia::baselines;
namespace cc = cynthia::cloud;
namespace cu = cynthia::util;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }
}  // namespace

TEST(Integration, ProfileOncepredictEverywhere) {
  // One profile must support predictions across worker counts, PS counts,
  // heterogeneity and a different instance type, all within 15%.
  const auto& w = cd::workload_by_name("cifar10");
  const auto pred = co::Predictor::build(w, m4(), {.loss_history_iterations = 1000});
  struct Case {
    cd::ClusterSpec cluster;
    const char* label;
  };
  const auto& m1 = cc::Catalog::aws().at("m1.xlarge");
  const auto& c3 = cc::Catalog::aws().at("c3.xlarge");
  std::vector<Case> cases{
      {cd::ClusterSpec::homogeneous(m4(), 6, 1), "m4 x6"},
      {cd::ClusterSpec::homogeneous(m4(), 10, 2), "m4 x10 2ps"},
      {cd::ClusterSpec::with_stragglers(m4(), m1, 6, 1), "hetero x6"},
      {cd::ClusterSpec::homogeneous(c3, 6, 1), "c3 x6 (cross-type)"},
  };
  for (const auto& tc : cases) {
    cd::TrainOptions o;
    o.iterations = 250;
    const auto obs = cd::run_training(tc.cluster, w, o);
    const double predicted = pred.model().predict_total(tc.cluster, w.sync, 250).value();
    EXPECT_NEAR(predicted, obs.total_time, obs.total_time * 0.15) << tc.label;
  }
}

TEST(Integration, CynthiaBeatsBaselinesUnderBottleneck) {
  // The Fig. 6 aggregate claim, as a strict inequality on mean error over
  // the bottlenecked operating points.
  const auto& w = cd::workload_by_name("vgg19");
  const auto profile = cynthia::profiler::profile_workload(w, m4());
  co::CynthiaModel cynthia(profile);
  cb::PaleoModel paleo(profile);
  const auto optimus = cb::OptimusModel::fit_online(w, m4(), {1, 2, 4});

  std::vector<double> obs_v, cyn_v, pal_v, opt_v;
  for (int n : {9, 11, 13}) {
    const auto cluster = cd::ClusterSpec::homogeneous(m4(), n, 1);
    cd::TrainOptions o;
    o.iterations = 150;
    obs_v.push_back(cd::run_training(cluster, w, o).total_time);
    cyn_v.push_back(cynthia.predict_total(cluster, w.sync, 150).value());
    pal_v.push_back(paleo.predict_total(cluster, w.sync, 150).value());
    opt_v.push_back(optimus.predict_total(n, 1, 150).value());
  }
  const double cyn_err = cu::mape_percent(obs_v, cyn_v);
  const double pal_err = cu::mape_percent(obs_v, pal_v);
  const double opt_err = cu::mape_percent(obs_v, opt_v);
  EXPECT_LT(cyn_err, 10.0);
  EXPECT_LT(cyn_err, opt_err);
  EXPECT_LT(cyn_err, pal_err);
}

TEST(Integration, PlannedIterationBudgetReachesTargetLoss) {
  // Loss-model round trip: fit from a prior run, invert for a target,
  // train the planned budget, verify the achieved loss.
  const auto& w = cd::workload_by_name("resnet32");
  const auto pred = co::Predictor::build(w, m4(), {.loss_history_iterations = 600});
  const int n = 6;
  const long per_worker = pred.loss().iterations_for(0.9, n);
  cd::TrainOptions o;
  o.iterations = per_worker * n;
  const auto r = cd::run_training(cd::ClusterSpec::homogeneous(m4(), n, 1), w, o);
  EXPECT_LE(r.final_loss, 0.9 * 1.08);
  EXPECT_GE(r.final_loss, 0.9 * 0.8) << "budget should be tight, not wasteful";
}

TEST(Integration, CostSavingVersusOptimusOnTightLossGoal) {
  // Fig. 12(b): at 60 min / loss 0.7, Cynthia's plan must be no more
  // expensive than modified Optimus' when both are executed on the testbed.
  const auto& w = cd::workload_by_name("cifar10");
  const auto pred = co::Predictor::build(w, m4(), {.loss_history_iterations = 2000});
  co::Provisioner cynthia(pred.model(), pred.loss(), {m4()});
  auto optimus = cb::OptimusProvisioner::build_online(w, pred.loss(), {m4()});
  const co::ProvisionGoal goal{cu::minutes(60), 0.7};

  const auto cplan = cynthia.plan(w.sync, goal);
  const auto oplan = optimus.plan(w.sync, goal);
  ASSERT_TRUE(cplan.feasible);
  ASSERT_TRUE(oplan.feasible);

  auto execute = [&](const co::ProvisionPlan& plan) {
    cd::TrainOptions o;
    o.iterations = plan.total_iterations;
    const auto r = cd::run_training(
        cd::ClusterSpec::homogeneous(plan.type, plan.n_workers, plan.n_ps), w, o);
    return co::plan_cost(plan.type, plan.n_workers, plan.n_ps, cu::Seconds{r.total_time});
  };
  EXPECT_LE(execute(cplan).value(), execute(oplan).value() * 1.02);
}

TEST(Integration, ServiceReportsConsistentAccounting) {
  cynthia::orch::TrainingService service;
  const auto& w = cd::workload_by_name("cifar10");
  const auto report = service.submit(w, {cu::minutes(150), 0.8});
  ASSERT_TRUE(report.has_value());
  // Achieved loss close to target (the budget is sized for it).
  EXPECT_NEAR(report->achieved_loss, 0.8, 0.08);
  // Training consumed exactly the planned budget.
  EXPECT_EQ(report->training.iterations, report->plan.total_iterations);
  // The report's wall time is what the trainer measured.
  EXPECT_GT(report->training.total_time, 0.0);
}

TEST(Integration, RepeatedRunsAreStableAcrossSeeds) {
  // The paper repeats each experiment 3x and reports small error bars;
  // our jittered simulator must behave the same way.
  const auto& w = cd::workload_by_name("cifar10");
  const auto rep = cd::run_repeated(cd::ClusterSpec::homogeneous(m4(), 8, 1), w,
                                    {.iterations = 200}, 3);
  EXPECT_LT(rep.stddev_time / rep.mean_time, 0.05);
}
