// Tests for the Cynthia performance model (Eqs. 2-7): the utilization
// estimator, heterogeneity handling, multi-PS scaling, and prediction
// accuracy against the simulated testbed.
#include <gtest/gtest.h>

#include "cloud/instance.hpp"
#include "core/perf_model.hpp"
#include "core/predictor.hpp"
#include "ddnn/trainer.hpp"
#include "profiler/profiler.hpp"
#include "util/stats.hpp"

namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;
namespace cp = cynthia::profiler;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }
const cc::InstanceType& m1() { return cc::Catalog::aws().at("m1.xlarge"); }
const cc::InstanceType& r3() { return cc::Catalog::aws().at("r3.xlarge"); }

const cp::ProfileResult& profile_of(const char* name) {
  static std::map<std::string, cp::ProfileResult> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, cp::profile_workload(cd::workload_by_name(name), m4())).first;
  }
  return it->second;
}
}  // namespace

TEST(PerfModel, EffectiveBandwidthIsFullDuplex) {
  EXPECT_DOUBLE_EQ(co::effective_ps_bandwidth(m4()).value(), 2.0 * m4().nic_mbps.value());
}

TEST(PerfModel, RejectsBadInputs) {
  auto p = profile_of("cifar10");
  EXPECT_THROW(co::CynthiaModel(p, 0.0), std::invalid_argument);
  EXPECT_THROW(co::CynthiaModel(p, 1.5), std::invalid_argument);
  co::CynthiaModel m(p);
  EXPECT_THROW(m.predict_total(cd::ClusterSpec::homogeneous(m4(), 1, 1), cd::SyncMode::BSP, 0),
               std::invalid_argument);
  EXPECT_THROW(m.predict_iteration(cd::ClusterSpec{}, cd::SyncMode::BSP), std::invalid_argument);
}

TEST(PerfModel, Eq4BspComputeSplitsBatch) {
  co::CynthiaModel m(profile_of("cifar10"));
  const auto p2 = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 2, 1), cd::SyncMode::BSP);
  const auto p4 = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 4, 1), cd::SyncMode::BSP);
  EXPECT_NEAR(p2.t_comp.value(), 2.0 * p4.t_comp.value(), 1e-9);
}

TEST(PerfModel, Eq5BspCommGrowsLinearly) {
  co::CynthiaModel m(profile_of("cifar10"));
  const auto p2 = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 2, 1), cd::SyncMode::BSP);
  const auto p8 = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 8, 1), cd::SyncMode::BSP);
  EXPECT_NEAR(p8.t_comm.value(), 4.0 * p2.t_comm.value(), 1e-9);
}

TEST(PerfModel, Eq3BspOverlapTakesMax) {
  co::CynthiaModel m(profile_of("cifar10"));
  const auto p = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 4, 1), cd::SyncMode::BSP);
  EXPECT_DOUBLE_EQ(p.t_iter.value(), std::max(p.t_comp, p.t_comm).value());
}

TEST(PerfModel, Eq3AspSumsPhases) {
  co::CynthiaModel m(profile_of("vgg19"));
  const auto p = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 4, 1), cd::SyncMode::ASP);
  EXPECT_DOUBLE_EQ(p.t_iter.value(), (p.t_comp + p.t_comm).value());
}

TEST(PerfModel, MultiPsWidensBandwidthBudget) {
  co::CynthiaModel m(profile_of("vgg19"));
  const auto one = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 4, 1), cd::SyncMode::ASP);
  const auto two = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 4, 2), cd::SyncMode::ASP);
  EXPECT_NEAR(one.t_comm.value(), 2.0 * two.t_comm.value(), 1e-9);
  EXPECT_DOUBLE_EQ(two.bw_supply.value(), 2.0 * one.bw_supply.value());
}

TEST(PerfModel, UtilizationEstimatorDetectsMnistPsBottleneck) {
  // mnist's profile is PS-heavy; scaling out must trip the demand/supply
  // bottleneck test and depress the estimated worker utilization (Sec. 3).
  co::CynthiaModel m(profile_of("mnist"));
  const auto p1 = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 1, 1), cd::SyncMode::BSP);
  EXPECT_DOUBLE_EQ(p1.worker_utilization, 1.0);
  const auto p8 = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 8, 1), cd::SyncMode::BSP);
  EXPECT_TRUE(p8.cpu_bottleneck || p8.bw_bottleneck);
  EXPECT_LT(p8.worker_utilization, 0.6);
  EXPECT_GT(p8.worker_utilization, 0.0);
}

TEST(PerfModel, NoBottleneckForComputeBoundResnet) {
  co::CynthiaModel m(profile_of("resnet32"));
  const auto p = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 9, 1), cd::SyncMode::ASP);
  EXPECT_FALSE(p.cpu_bottleneck);
  EXPECT_FALSE(p.bw_bottleneck);
  EXPECT_DOUBLE_EQ(p.worker_utilization, 1.0);
}

TEST(PerfModel, Eq7RScaleModes) {
  co::CynthiaModel m(profile_of("cifar10"));
  // BSP homogeneous: n * c / c_base = n.
  const auto bsp = m.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 6, 1), cd::SyncMode::BSP);
  EXPECT_NEAR(bsp.r_scale, 6.0, 1e-9);
  // BSP heterogeneous: n * min(c) / c_base.
  const auto het =
      m.predict_iteration(cd::ClusterSpec::with_stragglers(m4(), m1(), 6, 1), cd::SyncMode::BSP);
  EXPECT_NEAR(het.r_scale, 6.0 * m1().core_gflops.value() / m4().core_gflops.value(), 1e-9);
  // ASP heterogeneous: sum(c) / c_base.
  const auto asp =
      m.predict_iteration(cd::ClusterSpec::with_stragglers(m4(), m1(), 6, 1), cd::SyncMode::ASP);
  const double expect =
      (3 * m4().core_gflops.value() + 3 * m1().core_gflops.value()) / m4().core_gflops.value();
  EXPECT_NEAR(asp.r_scale, expect, 1e-9);
}

TEST(PerfModel, HeadroomOneRecoversLiteralFormulas) {
  const auto& prof = profile_of("cifar10");
  co::CynthiaModel literal(prof, 1.0);
  const auto p = literal.predict_iteration(cd::ClusterSpec::homogeneous(m4(), 4, 1),
                                           cd::SyncMode::BSP);
  EXPECT_NEAR(p.t_comm.value(), 2.0 * prof.gparam.value() * 4 / (2.0 * m4().nic_mbps.value()),
              1e-9);
  EXPECT_NEAR(p.t_comp.value(), prof.witer.value() / (4 * m4().core_gflops.value()), 1e-9);
}

// ------------------------------------------------ prediction accuracy

struct AccuracyCase {
  const char* workload;
  int n_workers;
  int n_ps;
  bool hetero;
  long iterations;
  double tolerance;  // relative
};

class PredictionAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(PredictionAccuracy, WithinTolerance) {
  const auto& tc = GetParam();
  const auto& w = cd::workload_by_name(tc.workload);
  co::CynthiaModel model(profile_of(tc.workload));
  const auto cluster = tc.hetero
                           ? cd::ClusterSpec::with_stragglers(m4(), m1(), tc.n_workers, tc.n_ps)
                           : cd::ClusterSpec::homogeneous(m4(), tc.n_workers, tc.n_ps);
  cd::TrainOptions o;
  o.iterations = tc.iterations;
  const auto obs = cd::run_training(cluster, w, o);
  const double pred = model.predict_total(cluster, w.sync, tc.iterations).value();
  EXPECT_NEAR(pred, obs.total_time, obs.total_time * tc.tolerance)
      << tc.workload << " n=" << tc.n_workers << " ps=" << tc.n_ps
      << " hetero=" << tc.hetero;
}

INSTANTIATE_TEST_SUITE_P(
    PaperScenarios, PredictionAccuracy,
    ::testing::Values(
        // Fig. 6(a): VGG-19 ASP homogeneous.
        AccuracyCase{"vgg19", 7, 1, false, 200, 0.10},
        AccuracyCase{"vgg19", 9, 1, false, 200, 0.10},
        AccuracyCase{"vgg19", 12, 1, false, 200, 0.10},
        // Fig. 6(b): cifar10 BSP homogeneous.
        AccuracyCase{"cifar10", 4, 1, false, 300, 0.08},
        AccuracyCase{"cifar10", 9, 1, false, 300, 0.08},
        AccuracyCase{"cifar10", 12, 1, false, 300, 0.08},
        // Fig. 9: heterogeneous clusters.
        AccuracyCase{"resnet32", 4, 1, true, 120, 0.12},
        AccuracyCase{"resnet32", 9, 1, true, 120, 0.12},
        // Fig. 10: multiple PS nodes.
        AccuracyCase{"resnet32", 4, 2, false, 120, 0.10},
        AccuracyCase{"vgg19", 9, 2, false, 200, 0.10},
        AccuracyCase{"cifar10", 9, 2, false, 300, 0.10}));

TEST(Predictor, CrossInstancePredictionFig8) {
  // Profile on m4.xlarge, predict r3.xlarge — the whole point of using the
  // capability table instead of per-type profiling.
  const auto& w = cd::workload_by_name("vgg19");
  co::CynthiaModel model(profile_of("vgg19"));
  for (int n : {7, 9, 12}) {
    const auto cluster = cd::ClusterSpec::homogeneous(r3(), n, 1);
    cd::TrainOptions o;
    o.iterations = 200;
    const auto obs = cd::run_training(cluster, w, o);
    const double pred = model.predict_total(cluster, w.sync, 200).value();
    EXPECT_NEAR(pred, obs.total_time, obs.total_time * 0.12) << n;
  }
}

TEST(Predictor, FacadeBuildsAndPredicts) {
  const auto& w = cd::workload_by_name("cifar10");
  co::PredictorOptions opts;
  opts.loss_history_iterations = 1500;
  const auto pred = co::Predictor::build(w, m4(), opts);
  EXPECT_GT(pred.loss().beta0(), 0.0);
  const auto t =
      pred.predict_time(cd::ClusterSpec::homogeneous(m4(), 4, 1), w, /*iterations=*/100);
  EXPECT_GT(t.value(), 0.0);
  // Default iterations path.
  const auto t_default = pred.predict_time(cd::ClusterSpec::homogeneous(m4(), 4, 1), w);
  EXPECT_GT(t_default.value(), t.value());
}
