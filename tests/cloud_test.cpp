// Unit tests for the cloud substrate: catalog, capability table, pricing,
// billing meter, netperf.
#include <gtest/gtest.h>

#include "cloud/capability.hpp"
#include "cloud/instance.hpp"
#include "cloud/netperf.hpp"
#include "cloud/pricing.hpp"
#include "util/rng.hpp"

namespace cc = cynthia::cloud;
namespace cu = cynthia::util;

// ---------------------------------------------------------------- catalog

TEST(Catalog, ContainsPaperTestbedTypes) {
  const auto& cat = cc::Catalog::aws();
  for (const char* name : {"m4.xlarge", "m1.xlarge", "r3.xlarge", "c3.xlarge"}) {
    EXPECT_TRUE(cat.contains(name)) << name;
  }
}

TEST(Catalog, LookupReturnsCorrectEntry) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  EXPECT_EQ(m4.cpu_model, "Intel Xeon E5-2686 v4");
  EXPECT_EQ(m4.physical_cores, 2);
  EXPECT_FALSE(m4.previous_generation);
}

TEST(Catalog, UnknownTypeThrows) {
  EXPECT_THROW(cc::Catalog::aws().at("p3.16xlarge"), std::out_of_range);
  EXPECT_FALSE(cc::Catalog::aws().find("p3.16xlarge").has_value());
}

TEST(Catalog, M1IsStragglerClass) {
  const auto& cat = cc::Catalog::aws();
  const auto& m1 = cat.at("m1.xlarge");
  const auto& m4 = cat.at("m4.xlarge");
  EXPECT_TRUE(m1.previous_generation);
  // The straggler must be markedly slower (Figs. 1 and 9 rely on this).
  EXPECT_LT(m1.core_gflops.value(), 0.5 * m4.core_gflops.value());
}

TEST(Catalog, ProvisionableExcludesLegacy) {
  const auto types = cc::Catalog::aws().provisionable();
  EXPECT_FALSE(types.empty());
  for (const auto& t : types) {
    EXPECT_FALSE(t.previous_generation) << t.name;
  }
}

TEST(Catalog, DockerPriceSplitsInstancePrice) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  EXPECT_DOUBLE_EQ(m4.docker_price().value(), m4.price.value() / m4.physical_cores);
}

TEST(Catalog, AllEntriesPhysicallySane) {
  for (const auto& t : cc::Catalog::aws().types()) {
    EXPECT_GT(t.core_gflops.value(), 0.0) << t.name;
    EXPECT_GT(t.nic_mbps.value(), 0.0) << t.name;
    EXPECT_GT(t.price.value(), 0.0) << t.name;
    EXPECT_GE(t.vcpus, t.physical_cores) << t.name;
    EXPECT_GT(t.physical_cores, 0) << t.name;
  }
}

// -------------------------------------------------------------- capability

TEST(Capability, CatalogAndTableAgree) {
  // The paper reads c_wk from a static CPU table; the catalog must match it
  // for every type (Fig. 8's cross-type prediction depends on this).
  for (const auto& t : cc::Catalog::aws().types()) {
    auto cap = cc::lookup_cpu_capability(t.cpu_model);
    ASSERT_TRUE(cap.has_value()) << t.cpu_model;
    EXPECT_DOUBLE_EQ(cap->value(), t.core_gflops.value()) << t.cpu_model;
  }
}

TEST(Capability, UnknownModel) {
  EXPECT_FALSE(cc::lookup_cpu_capability("Intel 8086").has_value());
  EXPECT_THROW(cc::cpu_capability("Intel 8086"), std::out_of_range);
}

TEST(Capability, TableNonEmpty) { EXPECT_GE(cc::capability_table_size(), 4u); }

// ----------------------------------------------------------------- pricing

TEST(Pricing, DockerCostLinearInCountAndTime) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  const auto one = cc::docker_cost(m4, 1, cu::hours(1));
  EXPECT_NEAR(one.value(), m4.docker_price().value(), 1e-12);
  EXPECT_NEAR(cc::docker_cost(m4, 6, cu::hours(2)).value(), 12 * one.value(), 1e-12);
}

TEST(Pricing, InstanceCost) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  EXPECT_NEAR(cc::instance_cost(m4, 3, cu::hours(1)).value(), 0.6, 1e-12);
}

TEST(Pricing, NegativeInputsThrow) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  EXPECT_THROW(cc::docker_cost(m4, -1, cu::hours(1)), std::invalid_argument);
  EXPECT_THROW(cc::instance_cost(m4, 1, cu::Seconds{-5}), std::invalid_argument);
}

// ----------------------------------------------------------------- billing

TEST(Billing, AccruesPerSecond) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  cc::BillingMeter meter;
  meter.start("i-1", m4, cu::Seconds{0.0});
  meter.stop("i-1", cu::hours(1));
  EXPECT_NEAR(meter.total(cu::hours(1)).value(), 0.20, 1e-9);
}

TEST(Billing, MinimumChargeApplies) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  cc::BillingMeter meter;
  meter.start("i-1", m4, cu::Seconds{0.0});
  meter.stop("i-1", cu::Seconds{5.0});  // only 5 s, billed as 60 s
  EXPECT_NEAR(meter.total(cu::Seconds{10.0}).value(), 0.20 * 60.0 / 3600.0, 1e-9);
}

TEST(Billing, RunningInstancesValuedAtNow) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  cc::BillingMeter meter;
  meter.start("i-1", m4, cu::Seconds{100.0});
  EXPECT_EQ(meter.running_count(), 1u);
  EXPECT_NEAR(meter.total(cu::Seconds{100.0 + 7200.0}).value(), 0.40, 1e-9);
}

TEST(Billing, StopAllAndErrors) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  cc::BillingMeter meter;
  meter.start("a", m4, cu::Seconds{0.0});
  meter.start("b", m4, cu::Seconds{0.0});
  EXPECT_THROW(meter.start("a", m4, cu::Seconds{1.0}), std::invalid_argument);  // duplicate
  EXPECT_THROW(meter.stop("zzz", cu::Seconds{1.0}), std::out_of_range);
  meter.stop_all(cu::Seconds{1800.0});
  EXPECT_EQ(meter.running_count(), 0u);
  EXPECT_NEAR(meter.total(cu::Seconds{9999.0}).value(), 2 * 0.20 * 0.5, 1e-9);
}

TEST(Billing, RestartAfterStopAllowed) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  cc::BillingMeter meter;
  meter.start("i-1", m4, cu::Seconds{0.0});
  meter.stop("i-1", cu::hours(1));
  EXPECT_NO_THROW(meter.start("i-1", m4, cu::hours(2)));
  meter.stop("i-1", cu::hours(3));
  EXPECT_NEAR(meter.total(cu::hours(3)).value(), 0.40, 1e-9);
}

// ----------------------------------------------------------------- netperf

TEST(Netperf, MeasuresMinOfEndpointNics) {
  const auto& cat = cc::Catalog::aws();
  cu::Rng rng(5);
  const auto r = cc::netperf(cat.at("m4.xlarge"), cat.at("m1.xlarge"), rng, 0.0);
  EXPECT_DOUBLE_EQ(r.throughput.value(), cat.at("m1.xlarge").nic_mbps.value());
  EXPECT_GT(r.duration.value(), 0.0);
}

TEST(Netperf, NoiseIsBounded) {
  const auto& m4 = cc::Catalog::aws().at("m4.xlarge");
  cu::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double v = cc::measure_nic(m4, rng, 0.02).value();
    EXPECT_GE(v, m4.nic_mbps.value() * 0.98 - 1e-9);
    EXPECT_LE(v, m4.nic_mbps.value() * 1.02 + 1e-9);
  }
}
