// Tests for Algorithm 1: goal-driven, cost-minimizing provisioning.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cloud/instance.hpp"
#include "core/provisioner.hpp"
#include "ddnn/trainer.hpp"
#include "profiler/profiler.hpp"
#include "util/units.hpp"

namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;
namespace cp = cynthia::profiler;
namespace cu = cynthia::util;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

co::Provisioner make_provisioner(const char* name,
                                 std::vector<cc::InstanceType> types = {}) {
  static std::map<std::string, cp::ProfileResult> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, cp::profile_workload(cd::workload_by_name(name), m4())).first;
  }
  const auto& w = cd::workload_by_name(name);
  co::LossModel loss(w.sync, w.loss().beta0, w.loss().beta1);
  if (types.empty()) types = cc::Catalog::aws().provisionable();
  return co::Provisioner(co::CynthiaModel(it->second), std::move(loss), std::move(types));
}
}  // namespace

TEST(PlanCost, Eq8Arithmetic) {
  // (p_wk * n_wk + p_ps * n_ps) * duration.
  const auto c = co::plan_cost(m4(), 10, 2, cu::hours(1));
  EXPECT_NEAR(c.value(), 12 * m4().docker_price().value(), 1e-12);
}

TEST(Provisioner, FeasibleGoalProducesPlan) {
  auto prov = make_provisioner("cifar10");
  const auto plan = prov.plan(cd::SyncMode::BSP, {cu::minutes(120), 0.8});
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.n_workers, 1);
  EXPECT_GE(plan.n_ps, 1);
  EXPECT_GT(plan.iterations, 0);
  EXPECT_LE(plan.predicted_time.value(), 120 * 60.0);
  EXPECT_GT(plan.predicted_cost.value(), 0.0);
  EXPECT_FALSE(plan.describe().empty());
}

TEST(Provisioner, ImpossibleGoalReportsInfeasible) {
  auto prov = make_provisioner("vgg19");
  // Nothing trains VGG-19 to 0.8 in half a minute.
  const auto plan = prov.plan(cd::SyncMode::ASP, {cu::Seconds{30.0}, 0.8});
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.describe().find("infeasible"), std::string::npos);
}

TEST(Provisioner, TighterGoalsBuyMoreWorkers) {
  // Fig. 11: the 90-minute plan uses more workers than the 180-minute plan.
  auto prov = make_provisioner("cifar10");
  const auto tight = prov.plan(cd::SyncMode::BSP, {cu::minutes(90), 0.8});
  const auto loose = prov.plan(cd::SyncMode::BSP, {cu::minutes(180), 0.8});
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_GT(tight.n_workers, loose.n_workers);
}

TEST(Provisioner, HarderLossTargetsRaiseWorkersAndPs) {
  // Fig. 12: at a fixed 60-minute goal, pushing the loss target from 0.8 to
  // 0.7 forces a larger cluster and eventually a second PS.
  auto prov = make_provisioner("cifar10");
  const auto easy = prov.plan(cd::SyncMode::BSP, {cu::minutes(60), 0.8});
  const auto hard = prov.plan(cd::SyncMode::BSP, {cu::minutes(60), 0.7});
  ASSERT_TRUE(easy.feasible);
  ASSERT_TRUE(hard.feasible);
  EXPECT_GT(hard.n_workers, easy.n_workers);
  EXPECT_GE(hard.n_ps, easy.n_ps);
  EXPECT_GT(hard.iterations, easy.iterations);
  EXPECT_GT(hard.predicted_cost.value(), easy.predicted_cost.value());
}

TEST(Provisioner, EscalatesPsWhenMinimumPsInfeasible) {
  // Fig. 13's 30-minute VGG goal: a single PS cannot move the payload fast
  // enough at the required worker count; the plan must carry extra PS
  // capacity rather than report infeasible.
  auto prov = make_provisioner("vgg19");
  const auto plan = prov.plan(cd::SyncMode::ASP, {cu::minutes(30), 0.8});
  ASSERT_TRUE(plan.feasible);
  const auto relaxed = prov.plan(cd::SyncMode::ASP, {cu::minutes(90), 0.8});
  ASSERT_TRUE(relaxed.feasible);
  EXPECT_GT(plan.n_workers, relaxed.n_workers);
  EXPECT_GE(plan.n_ps, relaxed.n_ps);
}

TEST(Provisioner, PlanRespectsTheoremBounds) {
  auto prov = make_provisioner("cifar10");
  const auto plan = prov.plan(cd::SyncMode::BSP, {cu::minutes(90), 0.8});
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.n_workers, plan.bounds.n_lower);
}

TEST(Provisioner, AspPlansAccountForStaleness) {
  auto prov = make_provisioner("vgg19");
  const auto plan = prov.plan(cd::SyncMode::ASP, {cu::minutes(60), 0.8});
  ASSERT_TRUE(plan.feasible);
  // total = per-worker * n.
  EXPECT_EQ(plan.total_iterations, plan.iterations * plan.n_workers);
}

TEST(Provisioner, KeepTraceRecordsCandidates) {
  auto prov = make_provisioner("cifar10");
  co::ProvisionOptions opts;
  opts.keep_trace = true;
  opts.first_feasible_only = false;
  const auto plan = prov.plan(cd::SyncMode::BSP, {cu::minutes(90), 0.8}, opts);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(prov.considered().size(), 1u);
  bool found_chosen = false;
  for (const auto& c : prov.considered()) {
    if (c.type == plan.type.name && c.n_workers == plan.n_workers && c.n_ps == plan.n_ps) {
      found_chosen = true;
      EXPECT_TRUE(c.feasible);
    }
  }
  EXPECT_TRUE(found_chosen);
}

TEST(Provisioner, ExhaustiveNeverBeatsBoundedByMuchAndBothMeetGoal) {
  // The ablation claim: Theorem 4.1 pruning does not exclude materially
  // cheaper plans than brute force over the full grid.
  auto prov = make_provisioner("cifar10");
  const co::ProvisionGoal goal{cu::minutes(90), 0.8};
  co::ProvisionOptions bounded;  // default: Algorithm 1
  co::ProvisionOptions brute;
  brute.exhaustive = true;
  brute.first_feasible_only = false;
  const auto a = prov.plan(cd::SyncMode::BSP, goal, bounded);
  const auto b = prov.plan(cd::SyncMode::BSP, goal, brute);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(a.predicted_time.value(), goal.time_goal.value());
  EXPECT_LE(b.predicted_time.value(), goal.time_goal.value());
  EXPECT_LE(b.predicted_cost.value(), a.predicted_cost.value() + 1e-9);
  EXPECT_GT(b.predicted_cost.value(), a.predicted_cost.value() * 0.8);
}

TEST(Provisioner, SingleTypeRestrictionHonored) {
  const auto& r3 = cc::Catalog::aws().at("r3.xlarge");
  auto prov = make_provisioner("cifar10", {r3});
  const auto plan = prov.plan(cd::SyncMode::BSP, {cu::minutes(120), 0.8});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.type.name, "r3.xlarge");
}

TEST(Provisioner, PrefersCheaperTypeWhenBothFeasible) {
  // m4.xlarge is both faster and cheaper per docker than r3.xlarge in the
  // catalog, so it must win an open search.
  auto prov = make_provisioner("cifar10");
  const auto plan = prov.plan(cd::SyncMode::BSP, {cu::minutes(120), 0.8});
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.type.name, "m4.xlarge");
}

TEST(Provisioner, InvalidArgumentsThrow) {
  auto prov = make_provisioner("cifar10");
  EXPECT_THROW(prov.plan(cd::SyncMode::BSP, {cu::Seconds{0.0}, 0.8}), std::invalid_argument);
  const auto& w = cd::workload_by_name("cifar10");
  co::LossModel loss(w.sync, w.loss().beta0, w.loss().beta1);
  EXPECT_THROW(
      co::Provisioner(prov.model(), loss, std::vector<cc::InstanceType>{}),
      std::invalid_argument);
}

// The end-to-end guarantee: a plan executed on the simulated testbed meets
// its goal (the Sec. 5.2 experiments, miniaturized).
class PlanMeetsGoal : public ::testing::TestWithParam<double> {};

TEST_P(PlanMeetsGoal, SimulatedRunLandsUnderGoal) {
  const double loss_goal = GetParam();
  const auto& w = cd::workload_by_name("cifar10");
  auto prov = make_provisioner("cifar10");
  const co::ProvisionGoal goal{cu::minutes(90), loss_goal};
  const auto plan = prov.plan(cd::SyncMode::BSP, goal);
  ASSERT_TRUE(plan.feasible);
  cd::TrainOptions o;
  o.iterations = plan.total_iterations;
  const auto r = cd::run_training(
      cd::ClusterSpec::homogeneous(plan.type, plan.n_workers, plan.n_ps), w, o);
  // 10% tolerance mirrors the paper's "basically meets the goals".
  EXPECT_LE(r.total_time, goal.time_goal.value() * 1.10) << plan.describe();
  EXPECT_LE(r.final_loss, loss_goal * 1.06) << plan.describe();
}

INSTANTIATE_TEST_SUITE_P(LossTargets, PlanMeetsGoal, ::testing::Values(0.8, 0.7, 0.6));
