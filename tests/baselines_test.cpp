// Tests for the Paleo and Optimus comparison baselines — including the
// failure modes the paper demonstrates against them.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "baselines/optimus.hpp"
#include "baselines/optimus_provisioner.hpp"
#include "baselines/paleo.hpp"
#include "cloud/instance.hpp"
#include "core/perf_model.hpp"
#include "ddnn/trainer.hpp"
#include "profiler/profiler.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace cb = cynthia::baselines;
namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;
namespace cp = cynthia::profiler;
namespace cu = cynthia::util;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

const cp::ProfileResult& profile_of(const char* name) {
  static std::map<std::string, cp::ProfileResult> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, cp::profile_workload(cd::workload_by_name(name), m4())).first;
  }
  return it->second;
}
}  // namespace

// ----------------------------------------------------------------- Paleo

TEST(Paleo, SumsComputationAndCommunication) {
  cb::PaleoModel paleo(profile_of("cifar10"));
  co::CynthiaModel cynthia(profile_of("cifar10"), 1.0);
  const auto cluster = cd::ClusterSpec::homogeneous(m4(), 8, 1);
  const double p = paleo.predict_iteration(cluster, cd::SyncMode::BSP);
  const auto c = cynthia.predict_iteration(cluster, cd::SyncMode::BSP);
  // Same ingredients, but sum vs max: Paleo must exceed the overlapped
  // estimate (its documented overprediction, Fig. 6b).
  EXPECT_NEAR(p, (c.t_comp + c.t_comm).value(), 1e-9);
  EXPECT_GT(p, c.t_iter.value());
}

TEST(Paleo, OverpredictsOverlappedBspTraining) {
  const auto& w = cd::workload_by_name("cifar10");
  cb::PaleoModel paleo(profile_of("cifar10"));
  const auto cluster = cd::ClusterSpec::homogeneous(m4(), 12, 1);
  cd::TrainOptions o;
  o.iterations = 200;
  const auto obs = cd::run_training(cluster, w, o);
  const double pred = paleo.predict_total(cluster, cd::SyncMode::BSP, 200).value();
  EXPECT_GT(pred, obs.total_time * 1.3) << "Paleo should overshoot under comm growth";
}

TEST(Paleo, ObliviousToHeterogeneity) {
  // Mean-capability assumption: the straggler cluster prediction is far
  // below its true barrier-bound time (Fig. 9's motivation).
  const auto& w = cd::workload_by_name("mnist");
  cb::PaleoModel paleo(profile_of("mnist"));
  const auto hetero =
      cd::ClusterSpec::with_stragglers(m4(), cc::Catalog::aws().at("m1.xlarge"), 2, 1);
  cd::TrainOptions o;
  o.iterations = 1000;
  const auto obs = cd::run_training(hetero, w, o);
  const double pred = paleo.predict_total(hetero, cd::SyncMode::BSP, 1000).value();
  EXPECT_LT(pred, obs.total_time * 0.8);
}

TEST(Paleo, AspDividesAcrossWorkers) {
  cb::PaleoModel paleo(profile_of("vgg19"));
  const auto c4 = cd::ClusterSpec::homogeneous(m4(), 4, 1);
  const auto c8 = cd::ClusterSpec::homogeneous(m4(), 8, 1);
  const double t4 = paleo.predict_total(c4, cd::SyncMode::ASP, 100).value();
  const double t8 = paleo.predict_total(c8, cd::SyncMode::ASP, 100).value();
  EXPECT_NEAR(t4, 2.0 * t8, 1e-6);
}

TEST(Paleo, InvalidEfficiencyThrows) {
  EXPECT_THROW(cb::PaleoModel(profile_of("cifar10"), 0.0), std::invalid_argument);
  EXPECT_THROW(cb::PaleoModel(profile_of("cifar10"), 1.5), std::invalid_argument);
}

// --------------------------------------------------------------- Optimus

TEST(Optimus, FitsSyntheticSpeedCurveExactly) {
  // t = 1 + 8/w + 0.2 w/p: generated points must be recovered.
  std::vector<cb::SpeedSample> samples;
  for (int w = 1; w <= 6; ++w) {
    for (int p = 1; p <= 2; ++p) {
      samples.push_back({w, p, 1.0 + 8.0 / w + 0.2 * w / p});
    }
  }
  const auto m = cb::OptimusModel::fit(cd::SyncMode::BSP, samples);
  EXPECT_NEAR(m.predict_iteration(10, 1), 1.0 + 0.8 + 2.0, 0.05);
  EXPECT_NEAR(m.predict_iteration(10, 2), 1.0 + 0.8 + 1.0, 0.05);
}

TEST(Optimus, CoefficientsNonNegative) {
  const auto m = cb::OptimusModel::fit_online(cd::workload_by_name("cifar10"), m4());
  for (double t : m.coefficients()) EXPECT_GE(t, 0.0);
}

TEST(Optimus, FitRejectsBadSamples) {
  std::vector<cb::SpeedSample> two{{1, 1, 1.0}, {2, 1, 0.5}};
  EXPECT_THROW(cb::OptimusModel::fit(cd::SyncMode::BSP, two), std::invalid_argument);
  std::vector<cb::SpeedSample> bad{{1, 1, 1.0}, {0, 1, 0.5}, {2, 1, 0.4}};
  EXPECT_THROW(cb::OptimusModel::fit(cd::SyncMode::BSP, bad), std::invalid_argument);
}

TEST(Optimus, InterpolatesWellInsideSampledRange) {
  const auto& w = cd::workload_by_name("cifar10");
  const auto m = cb::OptimusModel::fit_online(w, m4(), {1, 2, 4});
  const auto cluster = cd::ClusterSpec::homogeneous(m4(), 3, 1);
  cd::TrainOptions o;
  o.iterations = 100;
  const auto obs = cd::run_training(cluster, w, o);
  const double pred = m.predict_total(3, 1, 100).value();
  EXPECT_NEAR(pred, obs.total_time, obs.total_time * 0.10);
}

TEST(Optimus, ExtrapolationDegradesUnderPsBottleneck) {
  // The paper's core criticism (Fig. 6a): samples taken at 1-4 workers say
  // nothing about the PS bottleneck at 9+, so the prediction error grows
  // while Cynthia's stays bounded.
  const auto& w = cd::workload_by_name("vgg19");
  const auto optimus = cb::OptimusModel::fit_online(w, m4(), {1, 2, 4});
  co::CynthiaModel cynthia(profile_of("vgg19"));
  const auto cluster = cd::ClusterSpec::homogeneous(m4(), 12, 1);
  cd::TrainOptions o;
  o.iterations = 150;
  const auto obs = cd::run_training(cluster, w, o);
  const double err_opt =
      cu::relative_error_percent(obs.total_time, optimus.predict_total(12, 1, 150).value());
  const double err_cyn = cu::relative_error_percent(
      obs.total_time, cynthia.predict_total(cluster, cd::SyncMode::ASP, 150).value());
  EXPECT_GT(err_opt, err_cyn);
  EXPECT_LT(err_cyn, 10.0);
}

TEST(Optimus, PredictInvalidInputsThrow) {
  const auto m = cb::OptimusModel::fit_online(cd::workload_by_name("cifar10"), m4());
  EXPECT_THROW(m.predict_iteration(0, 1), std::invalid_argument);
  EXPECT_THROW(m.predict_total(1, 1, 0), std::invalid_argument);
}

// --------------------------------------------------- modified Optimus

TEST(OptimusProvisioner, ProducesFeasiblePlanByItsOwnModel) {
  const auto& w = cd::workload_by_name("cifar10");
  co::LossModel loss(w.sync, w.bsp_loss.beta0, w.bsp_loss.beta1);
  auto prov = cb::OptimusProvisioner::build_online(w, loss, {m4()});
  const auto plan = prov.plan(cd::SyncMode::BSP, {cu::minutes(90), 0.8});
  ASSERT_TRUE(plan.feasible);
  EXPECT_LE(plan.predicted_time.value(), 90 * 60.0);
  EXPECT_GE(plan.n_workers, 1);
}

TEST(OptimusProvisioner, OverProvisionsRelativeToCynthia) {
  // Fig. 11(b): modified Optimus buys more workers than Cynthia for the
  // same goal (it keeps minimizing its own predicted cost, which favours
  // large clusters because its fitted curve underestimates comm growth).
  const auto& w = cd::workload_by_name("cifar10");
  co::LossModel loss(w.sync, w.bsp_loss.beta0, w.bsp_loss.beta1);
  auto optimus = cb::OptimusProvisioner::build_online(w, loss, {m4()});
  const auto oplan = optimus.plan(cd::SyncMode::BSP, {cu::minutes(90), 0.8});

  co::Provisioner cynthia(co::CynthiaModel(profile_of("cifar10")), loss, {m4()});
  const auto cplan = cynthia.plan(cd::SyncMode::BSP, {cu::minutes(90), 0.8});

  ASSERT_TRUE(oplan.feasible);
  ASSERT_TRUE(cplan.feasible);
  EXPECT_GE(oplan.n_workers, cplan.n_workers);
}

TEST(OptimusProvisioner, MismatchedModelCountThrows) {
  const auto& w = cd::workload_by_name("cifar10");
  co::LossModel loss(w.sync, w.bsp_loss.beta0, w.bsp_loss.beta1);
  auto m = cb::OptimusModel::fit_online(w, m4());
  EXPECT_THROW(cb::OptimusProvisioner({m}, loss, {m4(), cc::Catalog::aws().at("r3.xlarge")}),
               std::invalid_argument);
}
