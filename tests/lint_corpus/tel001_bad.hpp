// TEL-001 corpus: duplicate metric-name constant in a telemetry header.
#pragma once
inline constexpr char kCompSeconds[] = "trainer.comp_seconds";
inline constexpr char kCompSecondsDup[] = "trainer.comp_seconds";  // line 4
