// DET-003 clean twin: ordered map keeps iteration deterministic.
#pragma once
#include <map>

std::map<int, double> state;
