// UNITS-004 corpus: inline second<->hour conversion factor.
double hourly(double total_dollars, double elapsed_seconds) {
  return total_dollars / elapsed_seconds * 3600.0;  // line 3
}
