// LOCK-001 corpus: a manual lock that an early return leaks.
#include <mutex>

std::mutex gate;

bool submit(bool ready) {
  gate.lock();
  if (!ready) {
    return false;  // line 9: gate still held
  }
  gate.unlock();
  return true;
}
