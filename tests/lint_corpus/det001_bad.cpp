// DET-001 corpus: wall-clock reads inside the simulated world.
#include <chrono>

double stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // line 5
}
