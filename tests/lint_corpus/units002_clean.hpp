// UNITS-002 clean twin: the same API on util/units.hpp strong types.
#pragma once
#include "util/units.hpp"

struct RetryPolicy {
  cynthia::util::Seconds backoff{1.0};
  cynthia::util::Dollars budget{0.0};
};

void wait_for(cynthia::util::Seconds timeout);
