// UNITS-003 cross-TU corpus: the callee declares a seconds parameter...
#pragma once

void hold_for(double pause_seconds);
