// UNITS-004 clean twin: the conversion lives in util/units.hpp operators.
#include "util/units.hpp"

cynthia::util::DollarsPerHour hourly(cynthia::util::Dollars total, cynthia::util::Seconds t) {
  return total / t;
}
