// INC-002 corpus: parent-directory escape in a quoted include.
#include "../secret/impl.hpp"  // line 2
