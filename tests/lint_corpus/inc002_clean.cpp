// INC-002 clean twin: project-rooted include.
#include "core/provisioner.hpp"
