// DET-003 corpus: unordered containers in a determinism-critical dir.
#pragma once
#include <unordered_map>

std::unordered_map<int, double> state;  // line 5
