// UNITS-003 clean twin: strong types make the addition same-dimension.
#include "util/units.hpp"

cynthia::util::Seconds total(cynthia::util::Seconds elapsed, cynthia::util::Seconds barrier) {
  return elapsed + barrier;
}
