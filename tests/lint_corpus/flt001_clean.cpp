// FLT-001 clean twin: tolerance-based comparison.
bool settled(double x, double eps) { return x > 1.0 - eps && x < 1.0 + eps; }
