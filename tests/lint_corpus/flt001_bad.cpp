// FLT-001 corpus: exact equality against a floating literal.
bool settled(double x) {
  return x == 1.0;  // line 3
}
