// DET-002 clean twin: all randomness flows through the seeded Rng.
#include "util/rng.hpp"

double noise(cynthia::util::Rng& rng) { return rng.uniform(); }
