// INC-001 corpus: include-guard macros instead of #pragma once.
#ifndef CORPUS_INC001_BAD_HPP
#define CORPUS_INC001_BAD_HPP
int x;
#endif
