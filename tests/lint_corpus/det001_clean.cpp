// DET-001 clean twin: simulation time comes from the event queue.
double stamp(double sim_now) { return sim_now; }
