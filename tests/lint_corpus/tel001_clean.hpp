// TEL-001 clean twin: every metric key registered once.
#pragma once
inline constexpr char kCompSeconds[] = "trainer.comp_seconds";
inline constexpr char kBarrierSeconds[] = "trainer.barrier_seconds";
