// UNITS-002 corpus: registry-named raw doubles where unit types fit.
#pragma once

struct RetryPolicy {
  double backoff_seconds = 1.0;  // line 5
  double budget_dollars = 0.0;   // line 6
};

void wait_for(double timeout_seconds);  // line 9
