// INC-001 clean twin.
#pragma once
int x;
