// UNITS-003 corpus: adding seconds to megabytes inside one function.
double total(double elapsed_seconds, double payload_megabytes) {
  return elapsed_seconds + payload_megabytes;  // line 3
}
