// UNITS-001 corpus: a bare double parameter with a unit-free name.
void configure(double knob) {  // line 2
  (void)knob;
}
