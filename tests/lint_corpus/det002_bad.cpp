// DET-002 corpus: unseeded randomness breaks replayability.
#include <cstdlib>

int noise() {
  return rand();  // line 5
}
