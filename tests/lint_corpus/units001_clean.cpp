// UNITS-001 clean twin: the name carries the quantity.
void configure(double retry_delay) { (void)retry_delay; }
