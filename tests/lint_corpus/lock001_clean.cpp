// LOCK-001 clean twin: RAII guard releases on every path.
#include <mutex>

std::mutex gate;

bool submit(bool ready) {
  std::lock_guard<std::mutex> hold(gate);
  if (!ready) {
    return false;
  }
  return true;
}
