// ...and the caller feeds it dollars through the include graph.
#include "units003_xtu_api.hpp"

void run(double budget_dollars) {
  hold_for(budget_dollars);  // line 5
}
