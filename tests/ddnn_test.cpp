// Tests for the DDNN training simulation: workloads, loss process, cluster
// specs, and — most importantly — the BSP/ASP engines' emergent behaviour
// (the phenomena of the paper's Sec. 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cloud/instance.hpp"
#include "ddnn/cluster.hpp"
#include "ddnn/loss.hpp"
#include "ddnn/trainer.hpp"
#include "ddnn/workload.hpp"

namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }
const cc::InstanceType& m1() { return cc::Catalog::aws().at("m1.xlarge"); }
}  // namespace

// ------------------------------------------------------------- workloads

TEST(Workload, PaperTable4ValuesPresent) {
  const auto& w = cd::workload_by_name("resnet32");
  EXPECT_DOUBLE_EQ(w.witer.value(), 39.87);
  EXPECT_DOUBLE_EQ(w.gparam.value(), 2.22);
  EXPECT_EQ(w.sync, cd::SyncMode::ASP);
  EXPECT_EQ(w.default_iterations, 3000);
  EXPECT_EQ(w.batch_size, 128);
}

TEST(Workload, AllFourPaperWorkloads) {
  EXPECT_EQ(cd::paper_workloads().size(), 4u);
  for (const char* n : {"mnist", "cifar10", "resnet32", "vgg19"}) {
    EXPECT_NO_THROW(cd::workload_by_name(n)) << n;
  }
  EXPECT_THROW(cd::workload_by_name("bert"), std::invalid_argument);
}

TEST(Workload, Table1SyncModes) {
  EXPECT_EQ(cd::workload_by_name("mnist").sync, cd::SyncMode::BSP);
  EXPECT_EQ(cd::workload_by_name("cifar10").sync, cd::SyncMode::BSP);
  EXPECT_EQ(cd::workload_by_name("resnet32").sync, cd::SyncMode::ASP);
  EXPECT_EQ(cd::workload_by_name("vgg19").sync, cd::SyncMode::ASP);
}

TEST(Workload, SyncModeNames) {
  EXPECT_EQ(cd::to_string(cd::SyncMode::BSP), "BSP");
  EXPECT_EQ(cd::to_string(cd::SyncMode::ASP), "ASP");
}

// ---------------------------------------------------------- loss process

TEST(LossModelFn, BspDecaysAsInverseIterations) {
  cd::LossCoefficients c{1000.0, 0.2};
  EXPECT_NEAR(cd::loss_model(c, cd::SyncMode::BSP, 1000, 4), 1.2, 1e-12);
  EXPECT_NEAR(cd::loss_model(c, cd::SyncMode::BSP, 1000, 16), 1.2, 1e-12)
      << "BSP loss must not depend on worker count (Fig. 4a)";
}

TEST(LossModelFn, AspStalenessSlowsConvergence) {
  cd::LossCoefficients c{1000.0, 0.2};
  const double l4 = cd::loss_model(c, cd::SyncMode::ASP, 1000, 4);
  const double l9 = cd::loss_model(c, cd::SyncMode::ASP, 1000, 9);
  EXPECT_LT(l4, l9) << "more ASP workers converge slower at equal iterations (Fig. 4b)";
  EXPECT_NEAR(l9, 1000.0 * 3.0 / 1000 + 0.2, 1e-12);
}

TEST(LossModelFn, IterationsToReachInvertsModel) {
  cd::LossCoefficients c{1000.0, 0.2};
  const long s = cd::iterations_to_reach(c, cd::SyncMode::BSP, 0.7, 1);
  EXPECT_EQ(s, 2000);
  EXPECT_LE(cd::loss_model(c, cd::SyncMode::BSP, s, 1), 0.7 + 1e-9);
  // Unreachable target throws.
  EXPECT_THROW(cd::iterations_to_reach(c, cd::SyncMode::BSP, 0.1, 1), std::invalid_argument);
}

TEST(LossProcess, NoiseIsBoundedAndDeterministic) {
  const auto& w = cd::workload_by_name("cifar10");
  cd::LossProcess a(w, 4, 42), b(w, 4, 42);
  for (long s : {100L, 500L, 2000L}) {
    const double va = a.observe(s);
    EXPECT_DOUBLE_EQ(va, b.observe(s));
    const double expected = a.expected(s);
    EXPECT_NEAR(va / expected, 1.0, 3.5 * w.loss_noise_rel);
  }
}

// ------------------------------------------------------------- clusters

TEST(Cluster, HomogeneousBuilds) {
  auto c = cd::ClusterSpec::homogeneous(m4(), 5, 2);
  EXPECT_EQ(c.n_workers(), 5);
  EXPECT_EQ(c.n_ps(), 2);
  EXPECT_TRUE(c.homogeneous_workers());
  EXPECT_DOUBLE_EQ(c.min_worker_cpu().value(), m4().core_gflops.value());
  EXPECT_DOUBLE_EQ(c.total_ps_nic().value(), 2 * m4().nic_mbps.value());
  EXPECT_DOUBLE_EQ(c.total_ps_cpu().value(), 2 * m4().core_gflops.value());
}

TEST(Cluster, StragglerSplitMatchesPaper) {
  // Paper: floor(n/2) m1.xlarge stragglers.
  auto c = cd::ClusterSpec::with_stragglers(m4(), m1(), 9, 1);
  int slow = 0;
  for (const auto& w : c.workers) {
    if (w.instance_type == "m1.xlarge") ++slow;
  }
  EXPECT_EQ(slow, 4);
  EXPECT_EQ(c.n_workers(), 9);
  EXPECT_FALSE(c.homogeneous_workers());
  EXPECT_DOUBLE_EQ(c.min_worker_cpu().value(), m1().core_gflops.value());
  // PS stays on the fast type.
  EXPECT_EQ(c.ps.front().instance_type, "m4.xlarge");
}

TEST(Cluster, InvalidCountsThrow) {
  EXPECT_THROW(cd::ClusterSpec::homogeneous(m4(), 0, 1), std::invalid_argument);
  EXPECT_THROW(cd::ClusterSpec::homogeneous(m4(), 1, 0), std::invalid_argument);
  EXPECT_THROW((void)cd::ClusterSpec{}.min_worker_cpu(), std::logic_error);
}

// ----------------------------------------------------- trainer: basics

TEST(Trainer, DeterministicForSeed) {
  const auto& w = cd::workload_by_name("cifar10");
  auto c = cd::ClusterSpec::homogeneous(m4(), 3, 1);
  cd::TrainOptions o;
  o.iterations = 50;
  const auto a = cd::run_training(c, w, o);
  const auto b = cd::run_training(c, w, o);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
}

TEST(Trainer, SeedChangesJitter) {
  const auto& w = cd::workload_by_name("cifar10");
  auto c = cd::ClusterSpec::homogeneous(m4(), 3, 1);
  cd::TrainOptions a, b;
  a.iterations = b.iterations = 50;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(cd::run_training(c, w, a).total_time, cd::run_training(c, w, b).total_time);
}

TEST(Trainer, InvalidConfigurationsThrow) {
  const auto& w = cd::workload_by_name("cifar10");
  auto c = cd::ClusterSpec::homogeneous(m4(), 1, 1);
  cd::TrainOptions o;
  o.iterations = -5;
  EXPECT_THROW(cd::run_training(c, w, o), std::invalid_argument);
}

TEST(Trainer, SingleWorkerComputeBoundMatchesAnalytic) {
  // 1 worker, big compute, tiny comm: total ~= s * witer / c.
  const auto& w = cd::workload_by_name("resnet32");
  auto c = cd::ClusterSpec::homogeneous(m4(), 1, 1);
  cd::TrainOptions o;
  o.iterations = 20;
  o.compute_jitter = 0.0;
  const auto r = cd::run_training(c, w, o);
  const double comp = 20.0 * w.witer.value() / m4().core_gflops.value();
  EXPECT_NEAR(r.total_time, comp, comp * 0.05);  // small comm tail allowed
  EXPECT_GT(r.avg_worker_cpu_util, 0.9);
}

TEST(Trainer, IterationAccounting) {
  const auto& w = cd::workload_by_name("cifar10");
  auto c = cd::ClusterSpec::homogeneous(m4(), 2, 1);
  cd::TrainOptions o;
  o.iterations = 37;
  const auto r = cd::run_training(c, w, o);
  EXPECT_EQ(r.iterations, 37);
  EXPECT_NEAR(r.avg_iteration_time * 37, r.total_time, 1e-6);
  EXPECT_GT(r.final_loss, 0.0);
}

TEST(Trainer, DefaultIterationsFromWorkload) {
  auto w = cd::workload_by_name("vgg19");
  w.default_iterations = 5;
  auto c = cd::ClusterSpec::homogeneous(m4(), 1, 1);
  const auto r = cd::run_training(c, w, {});
  EXPECT_EQ(r.iterations, 5);
}

// --------------------------------------- trainer: emergent paper behaviour

TEST(Trainer, AspScalesOutForComputeBoundWorkloads) {
  // Fig. 1(a): ResNet-32 ASP keeps speeding up with more workers.
  const auto& w = cd::workload_by_name("resnet32");
  cd::TrainOptions o;
  o.iterations = 90;
  double prev = 1e18;
  for (int n : {1, 2, 4, 8}) {
    const auto r = cd::run_training(cd::ClusterSpec::homogeneous(m4(), n, 1), w, o);
    EXPECT_LT(r.total_time, prev) << n << " workers";
    prev = r.total_time;
  }
}

TEST(Trainer, BspScaleOutDegradesUnderPsBottleneck) {
  // Fig. 1(b) / the 137.6% claim: mnist BSP beyond the sweet spot is slower.
  const auto& w = cd::workload_by_name("mnist");
  cd::TrainOptions o;
  o.iterations = 2000;
  const auto t2 = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 2, 1), w, o).total_time;
  const auto t8 = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 8, 1), w, o).total_time;
  EXPECT_GT(t8, 1.5 * t2) << "blind scale-out must degrade mnist BSP";
}

TEST(Trainer, PsBottleneckThrottlesWorkerUtilization) {
  // Table 2: worker CPU utilization collapses once the PS saturates.
  const auto& w = cd::workload_by_name("mnist");
  cd::TrainOptions o;
  o.iterations = 2000;
  const auto r1 = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 1, 1), w, o);
  const auto r8 = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 8, 1), w, o);
  EXPECT_GT(r1.avg_worker_cpu_util, 0.9);
  EXPECT_LT(r8.avg_worker_cpu_util, 0.3);
  EXPECT_GT(r8.avg_ps_cpu_util, r1.avg_ps_cpu_util);
}

TEST(Trainer, StragglersSlowBspTraining) {
  // Fig. 1: heterogeneous BSP is slower when the PS is not the bottleneck.
  const auto& w = cd::workload_by_name("mnist");
  cd::TrainOptions o;
  o.iterations = 1000;
  const auto homo = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 2, 1), w, o).total_time;
  const auto hetero =
      cd::run_training(cd::ClusterSpec::with_stragglers(m4(), m1(), 2, 1), w, o).total_time;
  EXPECT_GT(hetero, homo * 1.3);
}

TEST(Trainer, StragglersSlowAspThroughput) {
  const auto& w = cd::workload_by_name("resnet32");
  cd::TrainOptions o;
  o.iterations = 60;
  const auto homo = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 4, 1), w, o).total_time;
  const auto hetero =
      cd::run_training(cd::ClusterSpec::with_stragglers(m4(), m1(), 4, 1), w, o).total_time;
  EXPECT_GT(hetero, homo * 1.2);
  EXPECT_LT(hetero, homo * 2.5);  // ASP does not barrier on the stragglers
}

TEST(Trainer, CommunicationGrowsWithWorkersUnderBsp) {
  // Fig. 3: computation shrinks, communication grows.
  const auto& w = cd::workload_by_name("cifar10");
  cd::TrainOptions o;
  o.iterations = 60;
  const auto small = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 4, 1), w, o);
  const auto large = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 16, 1), w, o);
  EXPECT_GT(small.computation_time, large.computation_time);
  EXPECT_LT(small.communication_time, large.communication_time);
}

TEST(Trainer, MorePsNodesRelievePsBoundWorkload) {
  // Fig. 10(b): mnist BSP benefits from added PS capacity...
  const auto& mnist = cd::workload_by_name("mnist");
  cd::TrainOptions o;
  o.iterations = 2000;
  const auto ps1 = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 8, 1), mnist, o).total_time;
  const auto ps4 = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 8, 4), mnist, o).total_time;
  EXPECT_LT(ps4, ps1 * 0.6);
}

TEST(Trainer, MorePsNodesDoNotHelpComputeBoundWorkload) {
  // Fig. 10(a): ...while ResNet-32 ASP gains almost nothing.
  const auto& resnet = cd::workload_by_name("resnet32");
  cd::TrainOptions o;
  o.iterations = 60;
  const auto ps1 =
      cd::run_training(cd::ClusterSpec::homogeneous(m4(), 4, 1), resnet, o).total_time;
  const auto ps4 =
      cd::run_training(cd::ClusterSpec::homogeneous(m4(), 4, 4), resnet, o).total_time;
  EXPECT_GT(ps4, ps1 * 0.9);
}

TEST(Trainer, PsIngressTraceCapturesSaturation) {
  // Fig. 2: PS throughput approaches the NIC line rate under load.
  const auto& w = cd::workload_by_name("mnist");
  cd::TrainOptions o;
  o.iterations = 3000;
  o.trace_bucket_seconds = 1.0;
  const auto r = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 8, 1), w, o);
  ASSERT_FALSE(r.ps_ingress_trace.empty());
  EXPECT_GT(r.ps_ingress_peak_mbps, 0.55 * m4().nic_mbps.value());
  EXPECT_LE(r.ps_ingress_peak_mbps, m4().nic_mbps.value() + 1e-6);
  // Trace volume is consistent with the average.
  double vol = 0.0;
  for (const auto& b : r.ps_ingress_trace) vol += b.value * b.width;
  EXPECT_NEAR(vol / r.total_time, r.ps_ingress_avg_mbps, r.ps_ingress_avg_mbps * 0.01 + 1e-9);
}

TEST(Trainer, LossCurveDecaysAndEndsNearModel) {
  const auto& w = cd::workload_by_name("cifar10");
  cd::TrainOptions o;
  o.iterations = 400;
  o.loss_sample_stride = 40;
  const auto r = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 4, 1), w, o);
  ASSERT_GE(r.loss_curve.size(), 5u);
  EXPECT_GT(r.loss_curve.front().loss, r.loss_curve.back().loss);
  const double expected = w.bsp_loss.beta0 / 400.0 + w.bsp_loss.beta1;
  EXPECT_NEAR(r.final_loss, expected, expected * 0.1);
}

TEST(Trainer, BspLossIndependentOfWorkers) {
  const auto& w = cd::workload_by_name("cifar10");
  cd::TrainOptions o;
  o.iterations = 300;
  const auto a = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 2, 1), w, o);
  const auto b = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 8, 1), w, o);
  EXPECT_NEAR(a.final_loss, b.final_loss, a.final_loss * 0.12);
}

TEST(Trainer, AspLossWorseWithMoreWorkersAtEqualIterations) {
  const auto& w = cd::workload_by_name("resnet32");
  cd::TrainOptions o;
  o.iterations = 300;
  const auto few = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 2, 1), w, o);
  const auto many = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 9, 1), w, o);
  EXPECT_LT(few.final_loss, many.final_loss);
}

TEST(Trainer, PipelineBlocksAblation) {
  // Disabling the parameter-sharding pipeline must lengthen communication-
  // bound training (this is the bench/ablation_model knob).
  const auto& w = cd::workload_by_name("mnist");
  cd::TrainOptions fast, slow;
  fast.iterations = slow.iterations = 1500;
  slow.comm_pipeline_blocks = 1;
  const auto piped = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 4, 1), w, fast);
  const auto unpiped = cd::run_training(cd::ClusterSpec::homogeneous(m4(), 4, 1), w, slow);
  EXPECT_GT(unpiped.total_time, piped.total_time * 1.2);
}

TEST(Trainer, RepeatedRunsReportSpread) {
  const auto& w = cd::workload_by_name("cifar10");
  auto c = cd::ClusterSpec::homogeneous(m4(), 3, 1);
  cd::TrainOptions o;
  o.iterations = 40;
  const auto rep = cd::run_repeated(c, w, o, 3);
  EXPECT_GT(rep.mean_time, 0.0);
  EXPECT_GE(rep.stddev_time, 0.0);
  EXPECT_LT(rep.stddev_time, rep.mean_time * 0.1);
  EXPECT_EQ(rep.representative.iterations, 40);
  EXPECT_THROW(cd::run_repeated(c, w, o, 0), std::invalid_argument);
}

class TrainerWorkerSweep : public ::testing::TestWithParam<int> {};

TEST_P(TrainerWorkerSweep, UtilizationsAreValidFractions) {
  const int n = GetParam();
  const auto& w = cd::workload_by_name("cifar10");
  cd::TrainOptions o;
  o.iterations = 30;
  const auto r = cd::run_training(cd::ClusterSpec::homogeneous(m4(), n, 1), w, o);
  ASSERT_EQ(static_cast<int>(r.worker_cpu_util.size()), n);
  for (double u : r.worker_cpu_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  for (double u : r.ps_cpu_util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GT(r.total_time, 0.0);
  EXPECT_GE(r.communication_time, 0.0);
  EXPECT_GT(r.computation_time, 0.0);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, TrainerWorkerSweep, ::testing::Values(1, 2, 3, 5, 8, 13));
