// Contention stress tests for the two components that are allowed to touch
// threads: util::ThreadPool and the telemetry metrics registry. Built and
// run under ThreadSanitizer in CI (see .github/workflows/ci.yml); under a
// plain build they still verify that concurrent updates sum correctly.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <future>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ct = cynthia::telemetry;
namespace cu = cynthia::util;

namespace {
constexpr int kThreads = 8;
constexpr int kOpsPerThread = 5000;

// Launches `kThreads` OS threads all hammering `fn(thread_index)`.
void hammer(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) threads.emplace_back([&fn, i] { fn(i); });
  for (auto& t : threads) t.join();
}
}  // namespace

// -------------------------------------------------------------- thread pool

TEST(TsanStress, ThreadPoolSubmitFromManyThreads) {
  cu::ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  std::vector<std::future<void>> futures(static_cast<std::size_t>(kThreads) * 64);
  std::atomic<std::size_t> slot{0};
  hammer([&](int) {
    for (int j = 0; j < 64; ++j) {
      futures[slot.fetch_add(1)] =
          pool.submit([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), kThreads * 64);
}

TEST(TsanStress, ParallelForCoversEveryIndexExactlyOnce) {
  cu::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TsanStress, ParallelForPropagatesExceptions) {
  cu::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(256,
                        [](std::size_t i) {
                          if (i == 128) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

// ------------------------------------------------------------------ metrics

TEST(TsanStress, CountersSumExactlyUnderContention) {
  ct::MetricsRegistry registry;
  // Pre-create so the hot loop exercises the lock-free path, then also
  // hammer the name-lookup path from every thread.
  ct::Counter& hot = registry.counter("stress.hot");
  hammer([&](int) {
    for (int j = 0; j < kOpsPerThread; ++j) {
      hot.inc(1.0);
      registry.counter("stress.looked_up").inc(2.0);
    }
  });
  EXPECT_DOUBLE_EQ(hot.value(), double(kThreads) * kOpsPerThread);
  EXPECT_DOUBLE_EQ(registry.counter_value("stress.looked_up"),
                   2.0 * kThreads * kOpsPerThread);
}

TEST(TsanStress, GaugeConvergesToLastWrite) {
  ct::MetricsRegistry registry;
  ct::Gauge& g = registry.gauge("stress.gauge");
  hammer([&](int t) {
    for (int j = 0; j < kOpsPerThread; ++j) g.set(double(t));
  });
  const double v = g.value();
  EXPECT_GE(v, 0.0);
  EXPECT_LT(v, double(kThreads));
  EXPECT_EQ(v, std::floor(v)) << "gauge value must be one of the written values";
}

TEST(TsanStress, HistogramConservesCountAndSumUnderContention) {
  ct::MetricsRegistry registry;
  ct::Histogram& h = registry.histogram("stress.hist");
  hammer([&](int t) {
    for (int j = 0; j < kOpsPerThread; ++j) {
      // Values spread across several decades so many buckets see traffic.
      h.observe(std::pow(10.0, t % 5 - 2) * (1.0 + j % 3));
    }
  });
  const std::uint64_t expected = std::uint64_t(kThreads) * kOpsPerThread;
  EXPECT_EQ(h.count(), expected);
  const auto buckets = h.bucket_counts();
  const std::uint64_t bucket_total =
      std::accumulate(buckets.begin(), buckets.end(), std::uint64_t{0});
  EXPECT_EQ(bucket_total, expected) << "every observation must land in exactly one bucket";
  EXPECT_GT(h.sum(), 0.0);
  EXPECT_GE(h.max(), h.min());
}

TEST(TsanStress, RegistryCreationRaceYieldsOneMetricPerName) {
  ct::MetricsRegistry registry;
  hammer([&](int t) {
    for (int j = 0; j < 200; ++j) {
      registry.counter("race.c" + std::to_string(j % 16)).inc();
      registry.gauge("race.g" + std::to_string(j % 16)).set(double(t));
      registry.histogram("race.h" + std::to_string(j % 16)).observe(1.0);
    }
  });
  // 16 of each kind, not one per thread: the registry deduplicates by name.
  EXPECT_EQ(registry.size(), 48u);
  // j % 16 == 0 for j in {0, 16, ..., 192}: 13 hits per thread.
  EXPECT_DOUBLE_EQ(registry.counter_value("race.c0"), double(kThreads) * 13);
}
