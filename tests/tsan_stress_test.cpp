// Contention stress tests for the components that are allowed to touch
// threads: util::ThreadPool, the telemetry metrics registry, and the
// provisioner hot path (shared PredictionCache + parallel candidate
// evaluation). Built and run under ThreadSanitizer in CI (see
// .github/workflows/ci.yml); under a plain build they still verify that
// concurrent updates sum correctly and plans stay deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cloud/instance.hpp"
#include "core/loss_model.hpp"
#include "core/provisioner.hpp"
#include "ddnn/workload.hpp"
#include "profiler/profiler.hpp"
#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace ct = cynthia::telemetry;
namespace cu = cynthia::util;
namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;
namespace cp = cynthia::profiler;

namespace {
constexpr int kThreads = 8;
constexpr int kOpsPerThread = 5000;

// Launches `kThreads` OS threads all hammering `fn(thread_index)`.
void hammer(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) threads.emplace_back([&fn, i] { fn(i); });
  for (auto& t : threads) t.join();
}
}  // namespace

// -------------------------------------------------------------- thread pool

TEST(TsanStress, ThreadPoolSubmitFromManyThreads) {
  cu::ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  std::vector<std::future<void>> futures(static_cast<std::size_t>(kThreads) * 64);
  std::atomic<std::size_t> slot{0};
  hammer([&](int) {
    for (int j = 0; j < 64; ++j) {
      futures[slot.fetch_add(1)] =
          pool.submit([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), kThreads * 64);
}

TEST(TsanStress, ParallelForCoversEveryIndexExactlyOnce) {
  cu::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TsanStress, ParallelForPropagatesExceptions) {
  cu::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(256,
                        [](std::size_t i) {
                          if (i == 128) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

// ------------------------------------------------------------------ metrics

TEST(TsanStress, CountersSumExactlyUnderContention) {
  ct::MetricsRegistry registry;
  // Pre-create so the hot loop exercises the lock-free path, then also
  // hammer the name-lookup path from every thread.
  ct::Counter& hot = registry.counter("stress.hot");
  hammer([&](int) {
    for (int j = 0; j < kOpsPerThread; ++j) {
      hot.inc(1.0);
      registry.counter("stress.looked_up").inc(2.0);
    }
  });
  EXPECT_DOUBLE_EQ(hot.value(), double(kThreads) * kOpsPerThread);
  EXPECT_DOUBLE_EQ(registry.counter_value("stress.looked_up"),
                   2.0 * kThreads * kOpsPerThread);
}

TEST(TsanStress, GaugeConvergesToLastWrite) {
  ct::MetricsRegistry registry;
  ct::Gauge& g = registry.gauge("stress.gauge");
  hammer([&](int t) {
    for (int j = 0; j < kOpsPerThread; ++j) g.set(double(t));
  });
  const double v = g.value();
  EXPECT_GE(v, 0.0);
  EXPECT_LT(v, double(kThreads));
  EXPECT_EQ(v, std::floor(v)) << "gauge value must be one of the written values";
}

TEST(TsanStress, HistogramConservesCountAndSumUnderContention) {
  ct::MetricsRegistry registry;
  ct::Histogram& h = registry.histogram("stress.hist");
  hammer([&](int t) {
    for (int j = 0; j < kOpsPerThread; ++j) {
      // Values spread across several decades so many buckets see traffic.
      h.observe(std::pow(10.0, t % 5 - 2) * (1.0 + j % 3));
    }
  });
  const std::uint64_t expected = std::uint64_t(kThreads) * kOpsPerThread;
  EXPECT_EQ(h.count(), expected);
  const auto buckets = h.bucket_counts();
  const std::uint64_t bucket_total =
      std::accumulate(buckets.begin(), buckets.end(), std::uint64_t{0});
  EXPECT_EQ(bucket_total, expected) << "every observation must land in exactly one bucket";
  EXPECT_GT(h.sum(), 0.0);
  EXPECT_GE(h.max(), h.min());
}

// --------------------------------------------------------------- provisioner

namespace {

co::Provisioner stress_provisioner() {
  static std::map<std::string, cp::ProfileResult> cache;
  const char* name = "cifar10";
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache
             .emplace(name, cp::profile_workload(cd::workload_by_name(name),
                                                 cc::Catalog::aws().at("m4.xlarge")))
             .first;
  }
  const auto& w = cd::workload_by_name(name);
  co::LossModel loss(cd::SyncMode::BSP, w.loss().beta0, w.loss().beta1);
  return co::Provisioner(co::CynthiaModel(it->second), std::move(loss),
                         cc::Catalog::aws().provisionable());
}

}  // namespace

TEST(TsanStress, ConcurrentPlansOnSharedProvisionerAreDeterministic) {
  const auto prov = stress_provisioner();
  const co::ProvisionGoal goal{cu::minutes(90), 0.8};
  // Parallel candidate evaluation forced on, so the pool-backed search, the
  // shared PredictionCache (dense slots + shards), and the stats counters
  // all see contention from plan() and replan() callers simultaneously.
  co::ProvisionOptions options;
  options.parallel_min_candidates = 1;
  options.keep_trace = true;

  const auto reference = prov.plan(cd::SyncMode::BSP, goal, options);
  ASSERT_TRUE(reference.feasible);
  const std::size_t reference_trace_size = prov.considered().size();
  const auto reference_replan =
      prov.replan(cd::SyncMode::BSP, 2000, cu::minutes(45), options);

  std::atomic<int> mismatches{0};
  hammer([&](int t) {
    for (int j = 0; j < 25; ++j) {
      if ((t + j) % 2 == 0) {
        const auto plan = prov.plan(cd::SyncMode::BSP, goal, options);
        if (plan.n_workers != reference.n_workers || plan.n_ps != reference.n_ps ||
            plan.t_iter != reference.t_iter ||
            plan.predicted_cost.value() != reference.predicted_cost.value()) {
          mismatches.fetch_add(1);
        }
      } else {
        const auto plan = prov.replan(cd::SyncMode::BSP, 2000, cu::minutes(45), options);
        if (plan.n_workers != reference_replan.n_workers ||
            plan.n_ps != reference_replan.n_ps || plan.t_iter != reference_replan.t_iter) {
          mismatches.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0) << "every concurrent caller must get the same plan";

  // considered() holds whichever call published last; every publication is
  // serialized and complete, so the trace is a full deterministic sequence.
  const auto final_plan = prov.plan(cd::SyncMode::BSP, goal, options);
  EXPECT_EQ(final_plan.n_workers, reference.n_workers);
  EXPECT_EQ(prov.considered().size(), reference_trace_size);

  const auto stats = prov.stats();
  EXPECT_EQ(stats.plans, 2u + kThreads * 25u + 1u);
}

TEST(TsanStress, CacheClearBetweenContendedPhasesKeepsPlansIdentical) {
  const auto prov = stress_provisioner();
  const co::ProvisionGoal goal{cu::minutes(90), 0.8};
  co::ProvisionOptions options;
  options.parallel_min_candidates = 1;
  const auto reference = prov.plan(cd::SyncMode::BSP, goal, options);
  ASSERT_TRUE(reference.feasible);
  // clear_cache() requires quiescence (prediction_cache.hpp), so clears run
  // between hammer phases; each phase then repopulates the cache under full
  // contention and every caller must still see the identical plan.
  for (int phase = 0; phase < 3; ++phase) {
    prov.clear_cache();
    hammer([&](int) {
      for (int j = 0; j < 10; ++j) {
        const auto plan = prov.plan(cd::SyncMode::BSP, goal, options);
        ASSERT_EQ(plan.n_workers, reference.n_workers);
        ASSERT_EQ(plan.t_iter, reference.t_iter);
      }
    });
  }
}

TEST(TsanStress, RegistryCreationRaceYieldsOneMetricPerName) {
  ct::MetricsRegistry registry;
  hammer([&](int t) {
    for (int j = 0; j < 200; ++j) {
      registry.counter("race.c" + std::to_string(j % 16)).inc();
      registry.gauge("race.g" + std::to_string(j % 16)).set(double(t));
      registry.histogram("race.h" + std::to_string(j % 16)).observe(1.0);
    }
  });
  // 16 of each kind, not one per thread: the registry deduplicates by name.
  EXPECT_EQ(registry.size(), 48u);
  // j % 16 == 0 for j in {0, 16, ..., 192}: 13 hits per thread.
  EXPECT_DOUBLE_EQ(registry.counter_value("race.c0"), double(kThreads) * 13);
}
