// Unit tests for the telemetry library: metrics registry (counters, gauges,
// log-scale histograms), simulation-time tracer with Chrome trace_event JSON
// export, and the trainer/orchestrator instrumentation contract — the
// breakdown counters must tile training wall-clock time and barrier waits
// must be attributable to the straggler gap.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cloud/instance.hpp"
#include "cloud/pricing.hpp"
#include "ddnn/trainer.hpp"
#include "ddnn/workload.hpp"
#include "orchestrator/cluster_manager.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace ct = cynthia::telemetry;
namespace cd = cynthia::ddnn;
using cynthia::cloud::Catalog;

// ------------------------------------------------------------- histograms

TEST(Histogram, BucketEdgesFollowTheLogLayout) {
  ct::HistogramOptions o;
  o.lowest_bound = 0.5;
  o.growth = 2.0;
  o.bucket_count = 4;
  const auto bounds = ct::Histogram::make_bounds(o);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.5);
  EXPECT_DOUBLE_EQ(bounds[1], 1.0);
  EXPECT_DOUBLE_EQ(bounds[2], 2.0);
  EXPECT_DOUBLE_EQ(bounds[3], 4.0);
}

TEST(Histogram, DefaultLayoutSpansMicrosecondsToTenMegaseconds) {
  const auto bounds = ct::Histogram::make_bounds({});
  ASSERT_EQ(bounds.size(), 14u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_NEAR(bounds.back(), 1e7, 1e-3);
}

TEST(Histogram, InvalidLayoutsThrow) {
  EXPECT_THROW(ct::Histogram::make_bounds({0.0, 10.0, 4}), std::invalid_argument);
  EXPECT_THROW(ct::Histogram::make_bounds({1e-6, 1.0, 4}), std::invalid_argument);
  EXPECT_THROW(ct::Histogram::make_bounds({1e-6, 10.0, 0}), std::invalid_argument);
}

TEST(Histogram, ObservationsLandInTheFirstAdmittingBucket) {
  ct::Histogram h({0.5, 2.0, 4});  // bounds 0.5, 1, 2, 4 + overflow
  h.observe(0.5);   // == bound: bucket 0 (upper bounds are inclusive)
  h.observe(0.75);  // bucket 1
  h.observe(4.0);   // bucket 3
  h.observe(100.0);  // overflow
  h.observe(-3.0);   // below everything: bucket 0
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 0.75 + 4.0 + 100.0 - 3.0);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, EmptyHistogramReportsZeroExtrema) {
  ct::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, EmptyHistogramQuantileIsExactlyZero) {
  // Documented contract: with no observations every quantile is a
  // deterministic 0.0 — never NaN, never a bucket midpoint — so report
  // generators can render empty runs without special-casing.
  ct::Histogram h;
  for (const double q : {0.0, 0.5, 0.99, 1.0, -0.25, 7.0}) {
    const double v = h.approx_quantile(q);
    EXPECT_EQ(v, 0.0) << "q=" << q;
    EXPECT_FALSE(std::isnan(v));
  }
  // One observation flips it to the real statistic; draining back to empty
  // is impossible (histograms are append-only), so 0.0 only means "empty".
  h.observe(3.0);
  EXPECT_GT(h.approx_quantile(0.5), 0.0);
}

// ------------------------------------------------------ counters / gauges

TEST(Metrics, CounterIsMonotone) {
  ct::Counter c;
  c.inc();
  c.inc(2.5);
  c.inc(0.0);    // ignored
  c.inc(-10.0);  // counters never go down
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  ct::Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(4.0);
  g.set(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(Metrics, RegistryReturnsStableIdentities) {
  ct::MetricsRegistry reg;
  ct::Counter& a = reg.counter("x");
  a.inc(2.0);
  reg.counter("y").inc();  // growing the map must not invalidate `a`
  EXPECT_EQ(&a, &reg.counter("x"));
  EXPECT_DOUBLE_EQ(reg.counter("x").value(), 2.0);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("x"), nullptr);  // kinds are separate namespaces
  EXPECT_DOUBLE_EQ(reg.counter_value("absent", 7.0), 7.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("absent", -2.0), -2.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, CsvExportIsPrometheusShaped) {
  ct::MetricsRegistry reg;
  reg.counter("events").inc(3.0);
  reg.gauge("util").set(0.5);
  auto& h = reg.histogram("lat", {1.0, 10.0, 2});  // bounds 1, 10 + overflow
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,events,value,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,util,value,0.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,count,3"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,le_1,1"), std::string::npos);    // cumulative
  EXPECT_NE(csv.find("histogram,lat,le_10,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,le_inf,3"), std::string::npos);  // == count
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, SpansRecordTracksInFirstUseOrder) {
  ct::Tracer tr;
  tr.span("b", "one", "cat", 0.0, 1.0);
  tr.span("a", "two", "cat", 1.0, 1.5);
  tr.span("b", "one", "cat", 2.0, 2.25);
  tr.instant("a", "mark", "cat", 3.0);
  ASSERT_EQ(tr.tracks().size(), 2u);
  EXPECT_EQ(tr.tracks()[0], "b");
  EXPECT_EQ(tr.tracks()[1], "a");
  ASSERT_EQ(tr.events().size(), 4u);
  EXPECT_EQ(tr.events()[1].track, 1);
  EXPECT_DOUBLE_EQ(tr.span_seconds("b", "one"), 1.25);
  EXPECT_DOUBLE_EQ(tr.span_seconds("a", "mark"), 0.0);  // instants have no span time
  EXPECT_DOUBLE_EQ(tr.span_seconds("absent", "one"), 0.0);
}

TEST(Tracer, DegenerateSpansClampToZeroDuration) {
  ct::Tracer tr;
  tr.span("t", "backwards", "cat", 5.0, 3.0);
  ASSERT_EQ(tr.events().size(), 1u);
  EXPECT_DOUBLE_EQ(tr.events()[0].duration, 0.0);
  EXPECT_DOUBLE_EQ(tr.events()[0].start, 5.0);
}

TEST(Tracer, TimeOffsetSequencesPhasesOnOneTimeline) {
  ct::Tracer tr;
  tr.span("t", "provision", "orch", 0.0, 10.0);
  tr.set_time_offset(10.0);  // training clock restarts at 0
  tr.span("t", "compute", "trainer", 0.0, 2.0);
  tr.instant("t", "mark", "trainer", 2.0);
  EXPECT_DOUBLE_EQ(tr.events()[1].start, 10.0);
  EXPECT_DOUBLE_EQ(tr.events()[2].start, 12.0);
}

// Minimal recursive-descent JSON validator: enough to prove the exported
// Chrome trace is well-formed (chrome://tracing would reject anything less).
namespace minijson {

struct Parser {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool lit(const char* s) {
    const char* q = p;
    while (*s) {
      if (q >= end || *q != *s) return false;
      ++q, ++s;
    }
    p = q;
    return true;
  }
  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
      }
      ++p;
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }
  bool number() {
    const char* q = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) || *p == '.' ||
                       *p == 'e' || *p == 'E' || *p == '-' || *p == '+')) {
      ++p;
    }
    return p > q;
  }
  bool value() {
    ws();
    if (p >= end) return false;
    if (*p == '{') return object();
    if (*p == '[') return array();
    if (*p == '"') return string();
    if (lit("true") || lit("false") || lit("null")) return true;
    return number();
  }
  bool object() {
    ++p;  // '{'
    ws();
    if (p < end && *p == '}') return ++p, true;
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') return ++p, true;
      return false;
    }
  }
  bool array() {
    ++p;  // '['
    ws();
    if (p < end && *p == ']') return ++p, true;
    while (true) {
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') return ++p, true;
      return false;
    }
  }
};

bool valid(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.value()) return false;
  parser.ws();
  return parser.p == parser.end;
}

}  // namespace minijson

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Tracer, ChromeJsonRoundTripsThroughAParser) {
  ct::Tracer tr;
  tr.span("wk0.cpu", "compute", "trainer", 0.0, 1.5);
  tr.span("wk0.comm", "push \"quoted\"\n", "trainer", 1.5, 2.0);  // escaping
  tr.instant("wk0.cpu", "parked", "trainer", 2.0);

  const std::string path = (std::filesystem::temp_directory_path() /
                            "cynthia_telemetry_test_trace.json").string();
  tr.write_chrome_json_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::filesystem::remove(path);

  EXPECT_TRUE(minijson::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 2);  // one per track
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2);     // spans
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1);     // instants
  // Timestamps are microseconds: the 1.5 s span starts at 0 and lasts 1.5e6.
  EXPECT_NE(json.find("\"dur\":1500000.000"), std::string::npos);
  EXPECT_NE(json.find("push \\\"quoted\\\"\\n"), std::string::npos);
}

TEST(Tracer, CsvExportListsEveryEvent) {
  ct::Tracer tr;
  tr.span("a", "s", "c", 0.0, 1.0);
  tr.instant("a", "i", "c", 2.0);
  std::ostringstream os;
  tr.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,track,category,name,start_s,duration_s\n"), std::string::npos);
  EXPECT_NE(csv.find("span,a,c,s,0.000000000,1.000000000"), std::string::npos);
  EXPECT_NE(csv.find("instant,a,c,i,2.000000000,0.000000000"), std::string::npos);
}

// ------------------------------------------------- trainer instrumentation

/// Heterogeneous 2-worker BSP run: wk0 is the fast (m4) worker, wk1 the
/// m1 straggler; the PS sits on the fast type.
cd::TrainResult straggler_run(ct::Telemetry* tel, long iterations = 30) {
  const auto cluster = cd::ClusterSpec::with_stragglers(
      Catalog::aws().at("m4.xlarge"), Catalog::aws().at("m1.xlarge"), 2, 1);
  cd::TrainOptions o;
  o.iterations = iterations;
  o.telemetry = tel;
  return cd::run_training(cluster, cd::workload_by_name("mnist"), o);
}

TEST(TrainerTelemetry, BreakdownCountersTileTrainingTime) {
  ct::Telemetry tel;
  const auto r = straggler_run(&tel);
  const auto& m = tel.metrics;
  const double comp = m.counter_value(ct::metric::kCompSeconds);
  const double comm = m.counter_value(ct::metric::kCommExposedSeconds);
  const double barrier = m.counter_value(ct::metric::kBarrierSeconds);
  const double total = m.gauge_value(ct::metric::kTrainSeconds);
  EXPECT_GT(comp, 0.0);
  EXPECT_GT(barrier, 0.0);
  EXPECT_NEAR(total, r.total_time, 1e-9);
  // The per-worker tiling is exact by construction; 1e-6 relative is far
  // inside the issue's 2% acceptance bound.
  EXPECT_NEAR(comp + comm + barrier, total, total * 1e-6);
  EXPECT_DOUBLE_EQ(m.counter_value(ct::metric::kIterations), 30.0);
  EXPECT_DOUBLE_EQ(m.gauge_value(ct::metric::kTrainWorkers), 2.0);
  EXPECT_GT(m.counter_value(ct::metric::kSimEvents), 0.0);
  EXPECT_GT(m.counter_value(ct::metric::kFluidSettles), 0.0);
  EXPECT_GT(m.counter_value(ct::metric::kPushSeconds), 0.0);
  EXPECT_GT(m.counter_value(ct::metric::kPullSeconds), 0.0);
}

TEST(TrainerTelemetry, FastWorkerAbsorbsTheStragglerGapAtTheBarrier) {
  ct::Telemetry tel;
  straggler_run(&tel);
  const auto& tr = tel.tracer;
  const double comp_fast = tr.span_seconds("wk0.cpu", "compute");
  const double comp_slow = tr.span_seconds("wk1.cpu", "compute");
  const double barrier_fast = tr.span_seconds("wk0.cpu", "barrier");
  const double barrier_slow = tr.span_seconds("wk1.cpu", "barrier");
  EXPECT_GT(comp_fast, 0.0);
  EXPECT_GT(comp_slow, comp_fast);  // the m1 straggler computes longer
  EXPECT_GT(barrier_fast, barrier_slow);  // ... so the m4 worker waits
  const double comm_fast =
      tr.span_seconds("wk0.comm", "push") + tr.span_seconds("wk0.comm", "pull");
  EXPECT_GT(comm_fast, 0.0);
  // Communication spans live on the comm tracks, not the cpu tracks.
  EXPECT_DOUBLE_EQ(tr.span_seconds("wk0.cpu", "push"), 0.0);
}

TEST(TrainerTelemetry, SummaryFractionsCoverTheRun) {
  ct::Telemetry tel;
  straggler_run(&tel);
  const auto s = ct::TelemetrySummary::from(tel.metrics);
  EXPECT_GT(s.train_seconds, 0.0);
  EXPECT_EQ(s.iterations, 30);
  EXPECT_EQ(s.workers, 2);
  EXPECT_NEAR(s.comp_fraction + s.comm_fraction + s.barrier_fraction, 1.0, 0.02);
  EXPECT_FALSE(s.table().to_string().empty());
}

TEST(TrainerTelemetry, DisabledTelemetryLeavesResultsBitIdentical) {
  ct::Telemetry tel;
  const auto with = straggler_run(&tel);
  const auto without = straggler_run(nullptr);
  EXPECT_EQ(with.total_time, without.total_time);
  EXPECT_EQ(with.computation_time, without.computation_time);
  EXPECT_EQ(with.communication_time, without.communication_time);
  EXPECT_EQ(with.final_loss, without.final_loss);
  EXPECT_FALSE(tel.tracer.events().empty());
  EXPECT_EQ(tel.tracer.dropped(), 0u);
}

TEST(TrainerTelemetry, AspAccountsCyclesAndWaits) {
  auto w = cd::workload_by_name("mnist");
  w.sync = cd::SyncMode::ASP;
  const auto cluster = cd::ClusterSpec::homogeneous(Catalog::aws().at("m4.xlarge"), 2, 1);
  ct::Telemetry tel;
  cd::TrainOptions o;
  o.iterations = 40;
  o.telemetry = &tel;
  const auto r = cd::run_training(cluster, w, o);
  const auto& m = tel.metrics;
  const double comp = m.counter_value(ct::metric::kCompSeconds);
  const double comm = m.counter_value(ct::metric::kCommExposedSeconds);
  const double barrier = m.counter_value(ct::metric::kBarrierSeconds);
  EXPECT_GT(comp, 0.0);
  EXPECT_GT(comm, 0.0);
  EXPECT_NEAR(comp + comm + barrier, r.total_time, r.total_time * 0.02);
  EXPECT_NE(m.find_gauge(ct::metric::kStaleness), nullptr);
}

// -------------------------------------------- orchestrator instrumentation

TEST(OrchestratorTelemetry, DeployEmitsLifecycleAndProvisionSpans) {
  cynthia::sim::Simulator sim;
  cynthia::cloud::BillingMeter billing;
  cynthia::orch::ClusterManager manager(sim, billing);
  ct::Telemetry tel;
  manager.set_telemetry(&tel);
  cynthia::core::ProvisionPlan plan;
  plan.feasible = true;
  plan.type = Catalog::aws().at("m4.xlarge");
  plan.n_workers = 4;
  plan.n_ps = 1;
  const auto d = manager.deploy(plan);
  EXPECT_TRUE(d.active);
  const auto& tr = tel.tracer;
  EXPECT_NEAR(tr.span_seconds("orchestrator", "provision"), d.provisioning_seconds(), 1e-9);
  EXPECT_NEAR(tel.metrics.counter_value(ct::metric::kProvisionSeconds),
              d.provisioning_seconds(), 1e-9);
  EXPECT_GT(tel.metrics.gauge_value(ct::metric::kBillingDollars), 0.0);
  // Every node went Requested -> Booting -> Installing -> Joining; each
  // closed state is a span on the node's own "i-<id>" track.
  ASSERT_FALSE(d.nodes.empty());
  const std::string track = "i-" + std::to_string(d.nodes.front());
  EXPECT_GT(tr.span_seconds(track, "Booting"), 0.0);
  EXPECT_GT(tr.span_seconds(track, "Installing"), 0.0);
  EXPECT_GT(tr.span_seconds(track, "Joining"), 0.0);
}

TEST(OrchestratorTelemetry, JoinFailuresCountRetries) {
  cynthia::sim::Simulator sim;
  cynthia::cloud::BillingMeter billing;
  cynthia::orch::NodeTimings timings;
  timings.join_failure_probability = 1.0;  // every join fails
  cynthia::orch::ClusterManager manager(sim, billing, /*seed=*/7, timings);
  ct::Telemetry tel;
  manager.set_telemetry(&tel);
  manager.launch(Catalog::aws().at("m4.xlarge"), 1);
  EXPECT_FALSE(manager.wait_all_ready());
  EXPECT_DOUBLE_EQ(tel.metrics.counter_value(ct::metric::kJoinRetries), 1.0);
}
