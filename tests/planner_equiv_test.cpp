// Bit-identical equivalence of the optimized planner hot path (memoized +
// bound-pruned + parallel) against the unoptimized reference scan, across
// the workload x instance x sync-mode matrix. The optimizations are only
// admissible because they provably never change the chosen plan
// (docs/PERF.md gives the pruning-safety argument); these tests pin that
// contract with exact floating-point comparisons — EXPECT_EQ on doubles,
// no tolerances — so a single ULP of drift in any optimized path fails.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "core/loss_model.hpp"
#include "core/provisioner.hpp"
#include "ddnn/workload.hpp"
#include "profiler/profiler.hpp"
#include "util/units.hpp"

namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cc = cynthia::cloud;
namespace cp = cynthia::profiler;
namespace cu = cynthia::util;

namespace {

const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

co::Provisioner make_provisioner(const char* name, cd::SyncMode mode) {
  static std::map<std::string, cp::ProfileResult> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, cp::profile_workload(cd::workload_by_name(name), m4())).first;
  }
  const auto& w = cd::workload_by_name(name);
  const auto& coef = w.loss_for(mode);
  co::LossModel loss(mode, coef.beta0, coef.beta1);
  return co::Provisioner(co::CynthiaModel(it->second), std::move(loss),
                         cc::Catalog::aws().provisionable());
}

struct Case {
  const char* workload;
  cd::SyncMode mode;
  co::ProvisionGoal goal;
};

std::vector<Case> paper_cases() {
  std::vector<Case> cases;
  for (cd::SyncMode mode : {cd::SyncMode::BSP, cd::SyncMode::ASP, cd::SyncMode::SSP}) {
    cases.push_back({"mnist", mode, {cu::minutes(30), 0.1}});
    cases.push_back({"cifar10", mode, {cu::minutes(90), 0.8}});
    cases.push_back({"vgg19", mode, {cu::minutes(240), 0.8}});
  }
  return cases;
}

// The pre-PR behavior: every candidate evaluated through the model, serially.
co::ProvisionOptions reference_options() {
  co::ProvisionOptions o;
  o.use_cache = false;
  o.prune = false;
  o.parallel_eval = false;
  return o;
}

// Default hot path (cache + prune; serial below the dispatch threshold).
co::ProvisionOptions optimized_options() { return {}; }

// Forces the thread-pool path regardless of grid size, so the deterministic
// reduction is exercised even for small searches.
co::ProvisionOptions parallel_options() {
  co::ProvisionOptions o;
  o.parallel_min_candidates = 1;
  return o;
}

void expect_same_prediction(const co::IterationPrediction& a, const co::IterationPrediction& b) {
  EXPECT_EQ(a.t_comp, b.t_comp);
  EXPECT_EQ(a.t_comm, b.t_comm);
  EXPECT_EQ(a.t_iter, b.t_iter);
  EXPECT_EQ(a.worker_utilization, b.worker_utilization);
  EXPECT_EQ(a.r_scale, b.r_scale);
  EXPECT_EQ(a.cpu_demand, b.cpu_demand);
  EXPECT_EQ(a.cpu_supply, b.cpu_supply);
  EXPECT_EQ(a.bw_demand, b.bw_demand);
  EXPECT_EQ(a.bw_supply, b.bw_supply);
  EXPECT_EQ(a.cpu_bottleneck, b.cpu_bottleneck);
  EXPECT_EQ(a.bw_bottleneck, b.bw_bottleneck);
}

void expect_same_plan(const co::ProvisionPlan& a, const co::ProvisionPlan& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  if (!a.feasible) return;
  EXPECT_EQ(a.type.name, b.type.name);
  EXPECT_EQ(a.n_workers, b.n_workers);
  EXPECT_EQ(a.n_ps, b.n_ps);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.t_iter, b.t_iter);
  EXPECT_EQ(a.predicted_time.value(), b.predicted_time.value());
  EXPECT_EQ(a.predicted_cost.value(), b.predicted_cost.value());
  expect_same_prediction(a.diagnostics, b.diagnostics);
  EXPECT_EQ(a.bounds.feasible, b.bounds.feasible);
  EXPECT_EQ(a.bounds.n_lower, b.bounds.n_lower);
  EXPECT_EQ(a.bounds.n_upper, b.bounds.n_upper);
  EXPECT_EQ(a.bounds.n_ps, b.bounds.n_ps);
}

}  // namespace

TEST(PlannerEquiv, BoundedPlanBitIdenticalAcrossMatrix) {
  for (const Case& c : paper_cases()) {
    SCOPED_TRACE(std::string(c.workload) + " mode " + std::to_string(int(c.mode)));
    const auto prov = make_provisioner(c.workload, c.mode);
    const auto reference = prov.plan(c.mode, c.goal, reference_options());
    const auto optimized = prov.plan(c.mode, c.goal, optimized_options());
    const auto parallel = prov.plan(c.mode, c.goal, parallel_options());
    // Second optimized call answers fully from the warm cache.
    const auto warm = prov.plan(c.mode, c.goal, optimized_options());
    expect_same_plan(reference, optimized);
    expect_same_plan(reference, parallel);
    expect_same_plan(reference, warm);
  }
}

TEST(PlannerEquiv, ExhaustivePlanBitIdenticalAcrossMatrix) {
  for (const Case& c : paper_cases()) {
    SCOPED_TRACE(std::string(c.workload) + " mode " + std::to_string(int(c.mode)));
    const auto prov = make_provisioner(c.workload, c.mode);
    auto reference = reference_options();
    auto optimized = optimized_options();
    auto parallel = parallel_options();
    reference.exhaustive = optimized.exhaustive = parallel.exhaustive = true;
    expect_same_plan(prov.plan(c.mode, c.goal, reference),
                     prov.plan(c.mode, c.goal, optimized));
    expect_same_plan(prov.plan(c.mode, c.goal, reference),
                     prov.plan(c.mode, c.goal, parallel));
  }
}

TEST(PlannerEquiv, ReplanBitIdenticalUnderDegradationMatrix) {
  const cu::Seconds budget = cu::minutes(45);
  for (const char* workload : {"mnist", "cifar10", "vgg19"}) {
    for (cd::SyncMode mode : {cd::SyncMode::BSP, cd::SyncMode::ASP, cd::SyncMode::SSP}) {
      const auto prov = make_provisioner(workload, mode);
      for (long remaining : {500L, 2000L}) {
        for (double derate : {1.0, 0.9, 0.8}) {
          for (double slack : {0.0, 0.1}) {
            SCOPED_TRACE(std::string(workload) + " mode " + std::to_string(int(mode)) +
                         " rem " + std::to_string(remaining) + " derate " +
                         std::to_string(derate) + " slack " + std::to_string(slack));
            const co::ReplanDegradation deg{derate, slack};
            const auto reference =
                prov.replan(mode, remaining, budget, reference_options(), deg);
            const auto optimized =
                prov.replan(mode, remaining, budget, optimized_options(), deg);
            const auto parallel =
                prov.replan(mode, remaining, budget, parallel_options(), deg);
            expect_same_plan(reference, optimized);
            expect_same_plan(reference, parallel);
          }
        }
      }
    }
  }
}

TEST(PlannerEquiv, InfeasibleGoalAgreesAcrossPaths) {
  const auto prov = make_provisioner("vgg19", cd::SyncMode::BSP);
  const co::ProvisionGoal goal{cu::Seconds{30.0}, 0.8};  // nothing trains VGG in 30 s
  EXPECT_FALSE(prov.plan(cd::SyncMode::BSP, goal, reference_options()).feasible);
  EXPECT_FALSE(prov.plan(cd::SyncMode::BSP, goal, optimized_options()).feasible);
  EXPECT_FALSE(prov.plan(cd::SyncMode::BSP, goal, parallel_options()).feasible);
}

TEST(PlannerEquiv, TraceDeterministicUnderParallelEvaluation) {
  const auto prov = make_provisioner("cifar10", cd::SyncMode::BSP);
  const co::ProvisionGoal goal{cu::minutes(90), 0.8};
  // Pruning off so the trace covers the full grid; parallel vs serial must
  // emit the identical candidate sequence (catalog order, then scan order).
  auto serial = reference_options();
  serial.keep_trace = true;
  auto parallel = parallel_options();
  parallel.keep_trace = true;
  parallel.prune = false;

  (void)prov.plan(cd::SyncMode::BSP, goal, serial);
  const std::vector<co::CandidateEvaluation> serial_trace = prov.considered();
  ASSERT_FALSE(serial_trace.empty());

  for (int run = 0; run < 3; ++run) {
    (void)prov.plan(cd::SyncMode::BSP, goal, parallel);
    const auto& trace = prov.considered();
    ASSERT_EQ(trace.size(), serial_trace.size()) << "run " << run;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(trace[i].type, serial_trace[i].type) << "entry " << i;
      EXPECT_EQ(trace[i].n_workers, serial_trace[i].n_workers) << "entry " << i;
      EXPECT_EQ(trace[i].n_ps, serial_trace[i].n_ps) << "entry " << i;
      EXPECT_EQ(trace[i].iterations, serial_trace[i].iterations) << "entry " << i;
      EXPECT_EQ(trace[i].t_iter, serial_trace[i].t_iter) << "entry " << i;
      EXPECT_EQ(trace[i].total_time, serial_trace[i].total_time) << "entry " << i;
      EXPECT_EQ(trace[i].cost, serial_trace[i].cost) << "entry " << i;
      EXPECT_EQ(trace[i].feasible, serial_trace[i].feasible) << "entry " << i;
    }
  }
}

TEST(PlannerEquiv, CacheServesRepeatCallsWithoutRecomputing) {
  const auto prov = make_provisioner("cifar10", cd::SyncMode::BSP);
  const co::ProvisionGoal goal{cu::minutes(90), 0.8};
  (void)prov.plan(cd::SyncMode::BSP, goal, optimized_options());
  const auto cold = prov.stats();
  EXPECT_GT(cold.cache_misses, 0u);
  (void)prov.plan(cd::SyncMode::BSP, goal, optimized_options());
  const auto warm = prov.stats();
  EXPECT_EQ(warm.cache_misses, cold.cache_misses) << "warm call must not recompute";
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
  EXPECT_EQ(warm.plans, cold.plans + 1);
}
