// Run-journal & attribution-ledger suite (tentpole of the observability PR).
//
// Covers the journal's determinism contract (same run -> same digest;
// journal-on -> bit-identical training and billing to journal-off), the
// cost-attribution ledger's exactness invariant (the grouped settlement
// fold reproduces the billing-meter chain bit-for-bit, never approximately),
// the prediction-audit flagging rule, and the JSONL/JSON/HTML writers.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cloud/instance.hpp"
#include "core/predictor.hpp"
#include "core/provisioner.hpp"
#include "ddnn/trainer.hpp"
#include "ddnn/workload.hpp"
#include "faults/fault_spec.hpp"
#include "orchestrator/recovery.hpp"
#include "orchestrator/sentinel.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"

namespace cc = cynthia::cloud;
namespace cd = cynthia::ddnn;
namespace cf = cynthia::faults;
namespace core = cynthia::core;
namespace ct = cynthia::telemetry;
namespace orch = cynthia::orch;

namespace {

const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

core::ProvisionPlan manual_plan(int n_workers, int n_ps, long iterations) {
  core::ProvisionPlan plan;
  plan.feasible = true;
  plan.type = m4();
  plan.n_workers = n_workers;
  plan.n_ps = n_ps;
  plan.iterations = iterations;
  plan.total_iterations = iterations;
  return plan;
}

/// Repair-in-place fault run with an optional journal-bearing telemetry.
orch::FaultRunReport fault_run(ct::Telemetry* tel, bool elastic = false) {
  const auto& w = cd::workload_by_name("mnist");
  const auto plan = manual_plan(4, 1, 300);
  const auto schedule = cf::FaultSchedule::parse("crash:ps0@3;slow:wk0@1x2+4");
  orch::RecoveryOptions options;
  options.elastic = elastic;
  options.training.telemetry = tel;
  const orch::RecoveryController controller(options);
  const core::ProvisionGoal goal{cynthia::util::Seconds{3600.0}, 1.0};
  if (elastic) {
    const auto pred = core::Predictor::build(w, m4());
    const core::Provisioner provisioner(pred.model(), pred.loss(),
                                        cc::Catalog::aws().provisionable());
    return controller.run(w, plan, schedule, goal, &provisioner);
  }
  return controller.run(w, plan, schedule, goal);
}

/// Sentinel straggler run (auto policy) with an optional telemetry bundle.
orch::SentinelReport sentinel_run(ct::Telemetry* tel) {
  const auto& w = cd::workload_by_name("mnist");
  const auto plan = manual_plan(4, 1, 400);
  const auto schedule = cf::FaultSchedule::parse("slow:wk1@1x4");
  orch::SentinelOptions so;
  so.policy = orch::MitigationPolicy::kAuto;
  so.seed = 7;
  so.training.telemetry = tel;
  const orch::SloSentinel sentinel(so);
  const core::ProvisionGoal goal{cynthia::util::Seconds{3600.0}, 1.0};
  return sentinel.run(w, plan, schedule, goal);
}

}  // namespace

// ---------------------------------------------------------------- journal

TEST(Journal, EventRecordingAndDigestAreDeterministic) {
  ct::Journal a;
  ct::Journal b;
  for (ct::Journal* j : {&a, &b}) {
    j->event(1.0, ct::JournalKind::kFaultInjected, "crash:wk1@40", "detail", 2.0);
    j->segment(0.0, "segment-0", "completed", 100, 0.02, 0.021, 2.1);
    j->verdict(5.0, "time-goal", true, 10.0, 5.0);
    j->billing_delta(5.0, j->next_settlement(), ct::CostPhase::kTrain,
                     ct::CostCause::kPlan, "i-1", 0.5);
  }
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.digest(), b.digest());
  b.event(6.0, ct::JournalKind::kDetection, "straggler");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Journal, TimeOffsetShiftsRecordedTimes) {
  ct::Journal j;
  j.event(1.0, ct::JournalKind::kDetection, "a");
  j.set_time_offset(10.0);
  j.event(1.0, ct::JournalKind::kDetection, "b");
  j.set_time_offset(0.0);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.records()[0].t, 1.0);
  EXPECT_EQ(j.records()[1].t, 11.0);
}

TEST(Journal, JsonlEmitsEveryFieldOnEveryLine) {
  ct::Journal j;
  j.event(1.5, ct::JournalKind::kMitigation, "replace \"wk1\"", "line\nbreak");
  j.billing_delta(2.0, j.next_settlement(), ct::CostPhase::kRecover,
                  ct::CostCause::kFault, "i-3", 0.25, "m4.xlarge");
  std::ostringstream os;
  j.write_jsonl(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"kind\":\"mitigation\""), std::string::npos);
  EXPECT_NE(out.find("replace \\\"wk1\\\""), std::string::npos);
  EXPECT_NE(out.find("line\\nbreak"), std::string::npos);
  EXPECT_NE(out.find("\"phase\":\"recover\""), std::string::npos);
  EXPECT_NE(out.find("\"cause\":\"fault\""), std::string::npos);
  EXPECT_NE(out.find("\"settlement\":0"), std::string::npos);
  // Two lines, each a complete record.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

// ------------------------------------------------------------ cost ledger

TEST(CostLedger, GroupedFoldReproducesSettlementChain) {
  ct::Journal j;
  // Settlement 0: three per-node deltas (a meter total); settlement 1: one
  // plan-cost delta. The reference is the exact arithmetic the orchestrator
  // performs: fold within each settlement, then across settlements.
  const double d1 = 0.1, d2 = 0.2, d3 = 0.30000000000000004, d4 = 0.7;
  const int s0 = j.next_settlement();
  j.billing_delta(1.0, s0, ct::CostPhase::kTrain, ct::CostCause::kPlan, "i-1", d1);
  j.billing_delta(1.0, s0, ct::CostPhase::kTrain, ct::CostCause::kPlan, "i-2", d2);
  j.billing_delta(1.0, s0, ct::CostPhase::kProvision, ct::CostCause::kPlan, "i-3", d3);
  const int s1 = j.next_settlement();
  j.billing_delta(2.0, s1, ct::CostPhase::kRecover, ct::CostCause::kFault, "x", d4);

  const auto ledger = ct::CostLedger::from(j);
  ASSERT_EQ(ledger.entries().size(), 4u);
  const double reference = ((0.0 + d1) + d2 + d3) + (0.0 + d4);
  EXPECT_EQ(ledger.total().value(), reference);  // bitwise, not NEAR
  EXPECT_EQ(ledger.phase_dollars(ct::CostPhase::kRecover), d4);
  EXPECT_EQ(ledger.cause_dollars(ct::CostCause::kFault), d4);
  EXPECT_EQ(ledger.node_dollars().at("i-2"), d2);
}

// ------------------------------------------------------- prediction audit

TEST(PredictionAudit, FlagsDivergenceBeyondBoundOnly) {
  ct::Journal j;
  j.segment(0.0, "segment-0", "completed", 100, 0.020, 0.021, 2.1);  // +5%
  j.segment(2.1, "segment-1", "completed", 100, 0.020, 0.025, 2.5);  // +25%
  j.segment(4.6, "segment-2", "manual", 100, 0.0, 0.025, 2.5);       // unpredicted
  j.verdict(7.1, "time-goal", true, 7.0, 7.1);
  const auto audit = ct::PredictionAudit::from(j, 0.10);
  ASSERT_EQ(audit.rows.size(), 3u);
  EXPECT_FALSE(audit.rows[0].flagged);
  EXPECT_TRUE(audit.rows[1].flagged);
  EXPECT_NEAR(audit.rows[1].error_frac, 0.25, 1e-12);
  EXPECT_FALSE(audit.rows[2].flagged) << "no prediction -> nothing to audit";
  EXPECT_TRUE(audit.has_tg);
  EXPECT_EQ(audit.tg_predicted_seconds, 7.0);
  EXPECT_FALSE(audit.tg_flagged);
}

// ------------------------------------------------- end-to-end determinism

TEST(JournalDeterminism, RunTwiceProducesIdenticalDigest) {
  ct::Telemetry a;
  ct::Telemetry b;
  (void)fault_run(&a);
  (void)fault_run(&b);
  EXPECT_GT(a.journal.size(), 0u);
  EXPECT_EQ(a.journal.size(), b.journal.size());
  EXPECT_EQ(a.journal.digest(), b.journal.digest());
  EXPECT_EQ(a.journal.dropped(), 0u);
}

TEST(JournalDeterminism, JournalOnIsBitIdenticalToJournalOff) {
  ct::Telemetry tel;
  const auto with = fault_run(&tel);
  const auto without = fault_run(nullptr);
  EXPECT_EQ(with.training.total_time, without.training.total_time);
  EXPECT_EQ(with.training.iterations, without.training.iterations);
  EXPECT_EQ(with.training.final_loss, without.training.final_loss);
  EXPECT_EQ(with.actual_cost.value(), without.actual_cost.value());
  EXPECT_GT(tel.journal.size(), 0u);
}

// ---------------------------------------------------- exactness invariant

TEST(JournalAttribution, RepairInPlaceLedgerSumsToMeterExactly) {
  ct::Telemetry tel;
  const auto report = fault_run(&tel);
  const auto ledger = ct::CostLedger::from(tel.journal);
  EXPECT_FALSE(ledger.entries().empty());
  EXPECT_EQ(ledger.total().value(), report.actual_cost.value());
  EXPECT_EQ(tel.metrics.gauge_value(ct::metric::kBillingDollars),
            report.actual_cost.value());
  EXPECT_GT(ledger.phase_dollars(ct::CostPhase::kRecover), 0.0)
      << "the crash replacement must be attributed to the recover phase";
}

TEST(JournalAttribution, ElasticReplanLedgerSumsToMeterExactly) {
  ct::Telemetry tel;
  const auto report = fault_run(&tel, /*elastic=*/true);
  const auto ledger = ct::CostLedger::from(tel.journal);
  EXPECT_FALSE(ledger.entries().empty());
  EXPECT_EQ(ledger.total().value(), report.actual_cost.value());
  EXPECT_EQ(tel.metrics.gauge_value(ct::metric::kBillingDollars),
            report.actual_cost.value());
}

TEST(JournalAttribution, SentinelLedgerSumsToMeterExactly) {
  ct::Telemetry tel;
  const auto report = sentinel_run(&tel);
  const auto ledger = ct::CostLedger::from(tel.journal);
  EXPECT_FALSE(ledger.entries().empty());
  EXPECT_EQ(ledger.total().value(), report.actual_cost.value());
  EXPECT_EQ(tel.metrics.gauge_value(ct::metric::kBillingDollars),
            report.actual_cost.value());
}

// ------------------------------------------------------------ run report

TEST(RunReport, BuildsLedgersAndWritesJsonAndHtml) {
  ct::Telemetry tel;
  const auto report = sentinel_run(&tel);
  const auto run = ct::RunReport::build(tel.journal, "sentinel smoke", 0.10);
  EXPECT_EQ(run.total_cost_dollars(), report.actual_cost.value());
  EXPECT_EQ(run.journal_records, tel.journal.size());
  EXPECT_FALSE(run.verdicts.empty());
  EXPECT_FALSE(run.audit.rows.empty());

  std::ostringstream json;
  run.write_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(j.find("\"total_dollars\""), std::string::npos);
  EXPECT_NE(j.find("\"by_phase\""), std::string::npos);
  EXPECT_NE(j.find("\"tg\""), std::string::npos);

  std::ostringstream html;
  run.write_html(html);
  const std::string h = html.str();
  EXPECT_NE(h.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(h.find("sentinel smoke"), std::string::npos);
  EXPECT_NE(h.find("Cost waterfall"), std::string::npos);
  EXPECT_NE(h.find("SLO verdict chain"), std::string::npos);
}
