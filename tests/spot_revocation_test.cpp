// Revocation-aware provisioning suite (ctest label: spot).
//
// Covers the interruption-model fitting and expected-run math in
// core/revocation, the mixed-fleet planner (core::Provisioner::plan_spot),
// the price-trace-derived fault schedules and mixed-fleet execution in
// orch, and the bit-identical-at-fixed-seed determinism contract that ties
// them together.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/instance.hpp"
#include "cloud/spot.hpp"
#include "core/predictor.hpp"
#include "core/provisioner.hpp"
#include "core/revocation.hpp"
#include "ddnn/workload.hpp"
#include "orchestrator/spot_runner.hpp"
#include "util/units.hpp"

namespace cc = cynthia::cloud;
namespace cd = cynthia::ddnn;
namespace core = cynthia::core;
namespace orch = cynthia::orch;
namespace util = cynthia::util;

namespace {

const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

/// A bid low enough to see revocations on every seed we use here.
util::DollarsPerHour tight_bid(const cc::SpotMarket& market) {
  return util::DollarsPerHour{market.mean_price("m4.xlarge") * 1.1};
}

core::InterruptionModel fit(std::uint64_t seed, double multiplier = 1.1) {
  cc::SpotMarket market(cc::Catalog::aws(), seed);
  return core::fit_interruption_model(
      market, m4(), util::DollarsPerHour{market.mean_price("m4.xlarge") * multiplier});
}

}  // namespace

// -------------------------------------------------------------- market

TEST(SpotTrace, PricesStayPositive) {
  cc::SpotMarket market(cc::Catalog::aws(), 11);
  for (double t = 0.0; t < util::days(3.0).value(); t += 150.0) {
    EXPECT_GT(market.price_at("m4.xlarge", t), 0.0) << "t=" << t;
  }
}

TEST(SpotTrace, CostIsAdditiveOverAdjacentWindows) {
  cc::SpotMarket market(cc::Catalog::aws(), 12);
  // Split points chosen off the 300 s step grid on purpose.
  const double t0 = 130.0, t1 = 7777.0, t2 = 20011.0;
  const double whole = market.cost("m4.xlarge", t0, t2).value();
  const double split =
      market.cost("m4.xlarge", t0, t1).value() + market.cost("m4.xlarge", t1, t2).value();
  EXPECT_NEAR(whole, split, 1e-9 * std::max(1.0, whole));
}

TEST(SpotTrace, RevocationImpliesPriceAboveBid) {
  cc::SpotMarket market(cc::Catalog::aws(), 13);
  const double bid = tight_bid(market).value();
  double t = market.next_availability_after("m4.xlarge", 0.0, bid);
  ASSERT_TRUE(std::isfinite(t));
  for (int i = 0; i < 8; ++i) {
    const double revoked = market.next_revocation_after("m4.xlarge", t, bid);
    if (!std::isfinite(revoked)) break;
    EXPECT_GT(market.price_at("m4.xlarge", revoked), bid);
    const double back = market.next_availability_after("m4.xlarge", revoked, bid);
    if (!std::isfinite(back)) break;
    EXPECT_LE(market.price_at("m4.xlarge", back), bid);
    EXPECT_GT(back, revoked);
    t = back;
  }
}

// ------------------------------------------------- interruption fitting

TEST(InterruptionFit, TightBidSeesRevocations) {
  const core::InterruptionModel model = fit(21);
  EXPECT_GT(model.revocations, 0);
  EXPECT_GT(model.hazard, 0.0);
  EXPECT_GT(model.mean_uptime.value(), 0.0);
  EXPECT_GT(model.mean_outage.value(), 0.0);
  EXPECT_FALSE(model.always_available());
  // Held price can never exceed the bid, which sits well below on-demand.
  EXPECT_LT(model.held_price_ratio, 1.0);
  EXPECT_GT(model.held_price_ratio, 0.0);
}

TEST(InterruptionFit, GenerousBidIsAlwaysAvailable) {
  const core::InterruptionModel model = fit(21, /*multiplier=*/50.0);
  EXPECT_EQ(model.revocations, 0);
  EXPECT_DOUBLE_EQ(model.hazard, 0.0);
  EXPECT_TRUE(model.always_available());
}

TEST(InterruptionFit, DeterministicForSeed) {
  const core::InterruptionModel a = fit(22), b = fit(22);
  EXPECT_EQ(a.revocations, b.revocations);
  EXPECT_DOUBLE_EQ(a.hazard, b.hazard);
  EXPECT_DOUBLE_EQ(a.mean_uptime.value(), b.mean_uptime.value());
  EXPECT_DOUBLE_EQ(a.mean_outage.value(), b.mean_outage.value());
  EXPECT_DOUBLE_EQ(a.held_price_ratio, b.held_price_ratio);
}

// --------------------------------------------------- expected-run math

TEST(ExpectedRun, NoHazardMeansNominalRun) {
  core::InterruptionModel calm;
  calm.type = "m4.xlarge";
  calm.hazard = 0.0;
  core::RevocationRunShape shape;
  shape.work = util::Seconds{3600.0};
  shape.t_iter = util::Seconds{0.5};
  const core::ExpectedRun run = core::expected_run(calm, shape, util::Seconds{600.0});
  ASSERT_TRUE(run.finite);
  EXPECT_DOUBLE_EQ(run.expected_revocations, 0.0);
  EXPECT_DOUBLE_EQ(run.expected_wall.value(), run.expected_busy.value());
  EXPECT_GE(run.expected_busy.value(), shape.work.value());
}

TEST(ExpectedRun, SurvivingStateBeatsRollback) {
  const core::InterruptionModel model = fit(23);
  core::RevocationRunShape all_spot;
  all_spot.work = util::Seconds{4.0 * 3600.0};
  all_spot.t_iter = util::Seconds{0.5};
  all_spot.checkpoint_write = util::Seconds{20.0};
  all_spot.restore_read = util::Seconds{20.0};
  core::RevocationRunShape mixed = all_spot;
  mixed.state_survives = true;
  mixed.checkpoint_write = mixed.restore_read = util::Seconds{0.0};
  const core::ExpectedRun a = core::optimize_checkpoint_cadence(model, all_spot);
  const core::ExpectedRun b = core::optimize_checkpoint_cadence(model, mixed);
  ASSERT_TRUE(a.finite);
  ASSERT_TRUE(b.finite);
  EXPECT_LE(b.expected_busy.value(), a.expected_busy.value());
  // Mixed fleets keep the parameters alive: no checkpoints at all.
  EXPECT_DOUBLE_EQ(b.checkpoint_interval.value(), 0.0);
  EXPECT_DOUBLE_EQ(b.checkpoint_overhead.value(), 0.0);
}

TEST(ExpectedRun, OptimizedCadenceBeatsLegacyFixed600) {
  const core::InterruptionModel model = fit(24);
  ASSERT_GT(model.hazard, 0.0);
  core::RevocationRunShape shape;
  shape.work = util::Seconds{6.0 * 3600.0};
  shape.t_iter = util::Seconds{0.5};
  shape.checkpoint_write = util::Seconds{30.0};
  shape.restore_read = util::Seconds{30.0};
  const core::ExpectedRun best = core::optimize_checkpoint_cadence(model, shape);
  const core::ExpectedRun fixed = core::expected_run(model, shape, util::Seconds{600.0});
  ASSERT_TRUE(best.finite);
  ASSERT_TRUE(fixed.finite);
  EXPECT_LE(best.expected_wall.value(), fixed.expected_wall.value());
  EXPECT_GT(best.checkpoint_interval.value(), 0.0);
}

TEST(ExpectedRun, WallGrowsWithHazard) {
  core::InterruptionModel mild, stormy;
  mild.hazard = 1.0 / (8.0 * 3600.0);
  stormy.hazard = 1.0 / (1.0 * 3600.0);
  mild.mean_outage = stormy.mean_outage = util::Seconds{900.0};
  core::RevocationRunShape shape;
  shape.work = util::Seconds{2.0 * 3600.0};
  shape.t_iter = util::Seconds{0.5};
  shape.checkpoint_write = util::Seconds{15.0};
  shape.restore_read = util::Seconds{15.0};
  const core::ExpectedRun a = core::expected_run(mild, shape, util::Seconds{600.0});
  const core::ExpectedRun b = core::expected_run(stormy, shape, util::Seconds{600.0});
  ASSERT_TRUE(a.finite);
  ASSERT_TRUE(b.finite);
  EXPECT_LT(a.expected_wall.value(), b.expected_wall.value());
  EXPECT_LT(a.expected_revocations, b.expected_revocations);
}

// ------------------------------------------------------------- planner

TEST(SpotPlanner, NeverCostsMoreThanDurable) {
  const auto& w = cd::workload_by_name("cifar10");
  const auto pred = core::Predictor::build(w, m4());
  core::Provisioner prov(pred.model(), pred.loss(), cc::Catalog::aws().provisionable());
  const core::ProvisionGoal goal{util::minutes(90.0), 0.8};
  cc::SpotMarket market(cc::Catalog::aws(), 42);
  const core::SpotProvisionPlan sp = prov.plan_spot(w.sync, goal, market);
  ASSERT_TRUE(sp.feasible);
  ASSERT_TRUE(sp.durable.feasible);
  // The durable Algorithm 1 answer is always a candidate, so the
  // durability-aware winner can only improve on it.
  EXPECT_LE(sp.expected_cost.value(), sp.durable.predicted_cost.value() + 1e-9);
  // And it still meets the deadline in expectation.
  EXPECT_LE(sp.expected_time.value(), goal.time_goal.value() + 1e-9);
}

TEST(SpotPlanner, DeterministicForSeed) {
  const auto& w = cd::workload_by_name("cifar10");
  const auto pred = core::Predictor::build(w, m4());
  core::Provisioner prov(pred.model(), pred.loss(), cc::Catalog::aws().provisionable());
  const core::ProvisionGoal goal{util::minutes(90.0), 0.8};
  cc::SpotMarket market(cc::Catalog::aws(), 43);
  const auto a = prov.plan_spot(w.sync, goal, market);
  const auto b = prov.plan_spot(w.sync, goal, market);
  EXPECT_EQ(a.durability, b.durability);
  EXPECT_EQ(a.plan.type.name, b.plan.type.name);
  EXPECT_EQ(a.plan.n_workers, b.plan.n_workers);
  EXPECT_EQ(a.plan.n_ps, b.plan.n_ps);
  EXPECT_DOUBLE_EQ(a.expected_cost.value(), b.expected_cost.value());
  EXPECT_DOUBLE_EQ(a.expected_time.value(), b.expected_time.value());
  EXPECT_DOUBLE_EQ(a.checkpoint_interval.value(), b.checkpoint_interval.value());
}

TEST(SpotPlanner, InvalidBidThrows) {
  const auto& w = cd::workload_by_name("mnist");
  const auto pred = core::Predictor::build(w, m4());
  core::Provisioner prov(pred.model(), pred.loss(), cc::Catalog::aws().provisionable());
  cc::SpotMarket market;
  core::SpotPlanOptions bad;
  bad.bid_multiplier = 0.0;
  EXPECT_THROW(
      prov.plan_spot(w.sync, core::ProvisionGoal{util::minutes(30.0), 0.05}, market, bad),
      std::invalid_argument);
}

// --------------------------------------------------- schedules & runs

TEST(RevocationSchedule, DigestIdenticalAcrossRuns) {
  cc::SpotMarket market(cc::Catalog::aws(), 51);
  const double bid = tight_bid(market).value();
  const auto a = orch::revocation_schedule(market, "m4.xlarge", bid, 4, util::days(2.0),
                                           util::Seconds{180.0});
  const auto b = orch::revocation_schedule(market, "m4.xlarge", bid, 4, util::days(2.0),
                                           util::Seconds{180.0});
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_FALSE(a.events().empty());
  // Each revocation crashes every worker; none are permanent.
  EXPECT_EQ(a.events().size() % 4, 0u);
  for (const auto& spec : a.events()) {
    EXPECT_FALSE(spec.on_ps);
    EXPECT_GE(spec.recovery_seconds, 180.0);
  }
}

TEST(MixedFleet, BitIdenticalAcrossRepeats) {
  cc::SpotMarket market(cc::Catalog::aws(), 52);
  const auto& w = cd::workload_by_name("cifar10");
  orch::MixedFleetOptions o;
  o.bid_multiplier = 1.1;  // tight: force revocations into the run
  const auto a = orch::run_mixed_fleet(market, w, m4(), 4, 1, 3000, o);
  const auto b = orch::run_mixed_fleet(market, w, m4(), 4, 1, 3000, o);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.schedule.digest(), b.schedule.digest());
  EXPECT_DOUBLE_EQ(a.wall_time, b.wall_time);
  EXPECT_DOUBLE_EQ(a.cost.value(), b.cost.value());
  EXPECT_EQ(a.revocations, b.revocations);
}

TEST(MixedFleet, SurvivesRevocationsAndUndercutsOnDemand) {
  cc::SpotMarket market(cc::Catalog::aws(), 53);
  const auto& w = cd::workload_by_name("cifar10");
  orch::MixedFleetOptions o;
  o.bid_multiplier = 1.1;
  const auto r = orch::run_mixed_fleet(market, w, m4(), 4, 1, 4000, o);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.training.iterations, 4000);
  // Workers ride the discounted spot price, so the mixed bill undercuts
  // the all-on-demand counterfactual for the same held time.
  EXPECT_LT(r.cost.value(), r.on_demand_cost.value());
  EXPECT_GT(r.worker_busy_time, 0.0);
  EXPECT_LE(r.worker_busy_time, r.wall_time + 1e-9);
}

TEST(SpotRunner, FullHoldWindowIsBilled) {
  cc::SpotMarket market(cc::Catalog::aws(), 54);
  const auto& w = cd::workload_by_name("cifar10");
  orch::SpotRunOptions o;
  o.bid_multiplier = 1.05;  // tight: force at least one revocation
  const auto r = orch::run_on_spot(market, w, m4(), 4, 1, 4000, o);
  ASSERT_TRUE(r.completed);
  if (r.revocations > 0) {
    EXPECT_GT(r.restore_overhead, 0.0);
    EXPECT_GT(r.restart_overhead, 0.0);
  }
  // The billed busy time covers work, checkpoint writes, lost progress,
  // restore reads and restart delays — nothing rides free.
  EXPECT_GE(r.busy_time + 1e-6, r.checkpoint_overhead + r.lost_work + r.restore_overhead +
                                    r.restart_overhead);
}
