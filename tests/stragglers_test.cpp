// SLO-sentinel suite: straggler/degradation detection, mitigation policies,
// and no-oscillation guarantees, run under the full invariant checker
// (`ctest -L stragglers`). The StragglerDetector is driven both with
// synthetic probes (exact threshold semantics) and end-to-end through
// SloSentinel::run on fault-injected training.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/instance.hpp"
#include "core/predictor.hpp"
#include "core/provisioner.hpp"
#include "ddnn/monitor.hpp"
#include "ddnn/trainer.hpp"
#include "ddnn/workload.hpp"
#include "faults/fault_spec.hpp"
#include "orchestrator/sentinel.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace cc = cynthia::cloud;
namespace cd = cynthia::ddnn;
namespace core = cynthia::core;
namespace cf = cynthia::faults;
namespace orch = cynthia::orch;
namespace cu = cynthia::util;

namespace {

/// Every test in this file runs with the runtime invariant checker on.
class StragglersTest : public ::testing::Test {
 protected:
  void SetUp() override { cu::set_invariants_enabled(true); }
  void TearDown() override { cu::set_invariants_enabled(false); }
};

const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

/// A probe over `busy` with a healthy PS, `dt` seconds after the last one.
cd::HealthProbe probe_at(double now, long iteration, std::vector<double> busy,
                         double ps_sat = 0.0) {
  cd::HealthProbe p;
  p.now = now;
  p.iteration = iteration;
  p.total_iterations = 10000;
  p.mode = cd::SyncMode::BSP;
  p.worker_busy_seconds = std::move(busy);
  p.window_seconds = 1.0;
  p.ps_nic_saturated_fraction = ps_sat;
  return p;
}

orch::StragglerDetector::Config detector_config() {
  orch::StragglerDetector::Config cfg;
  cfg.total_iterations = 10000;
  cfg.replacement_after_seconds = 30.0;
  return cfg;
}

core::ProvisionPlan manual_plan(int n_workers, int n_ps, long iterations) {
  core::ProvisionPlan plan;
  plan.feasible = true;
  plan.type = m4();
  plan.n_workers = n_workers;
  plan.n_ps = n_ps;
  plan.iterations = iterations;
  plan.total_iterations = iterations;
  return plan;
}

}  // namespace

// ---------------------------------------------------------------- detector

TEST_F(StragglersTest, DetectorFlagsPersistentStragglerAfterHysteresis) {
  auto cfg = detector_config();
  std::vector<orch::DetectionEvent> detections;
  orch::StragglerDetector det(cfg, &detections);

  double t = 0.0;
  long iter = 0;
  // Warmup: a healthy, uniform cluster.
  for (int k = 0; k < cfg.thresholds.warmup_probes + 1; ++k) {
    auto a = det.observe(probe_at(t += 1.0, ++iter, {1.0, 1.0, 1.0, 1.0}));
    EXPECT_EQ(a.kind, cd::MonitorAction::Kind::kNone);
  }
  // Worker 2 turns 2x slow; hysteresis demands consecutive anomalies.
  cd::MonitorAction action;
  int probes_until_action = 0;
  for (int k = 0; k < 20; ++k) {
    action = det.observe(probe_at(t += 1.0, ++iter, {1.0, 1.0, 2.0, 1.0}));
    ++probes_until_action;
    if (action.kind != cd::MonitorAction::Kind::kNone) break;
  }
  ASSERT_EQ(action.kind, cd::MonitorAction::Kind::kExcludeWorker);
  EXPECT_EQ(action.target, 2);
  EXPECT_DOUBLE_EQ(action.replacement_after_seconds, 30.0);
  // The EWMA baseline must cross the threshold AND hold it for
  // hysteresis_probes probes; a single anomaly can never trigger.
  EXPECT_GE(probes_until_action, cfg.thresholds.hysteresis_probes);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].kind, "straggler");
  EXPECT_EQ(detections[0].worker, 2);
}

TEST_F(StragglersTest, DetectorIgnoresHealthyJitter) {
  auto cfg = detector_config();
  std::vector<orch::DetectionEvent> detections;
  orch::StragglerDetector det(cfg, &detections);
  // +/- 8% jitter is normal cloud noise; min_ratio gates the z-score.
  double t = 0.0;
  for (int k = 0; k < 60; ++k) {
    const double wiggle = (k % 3 == 0) ? 1.08 : (k % 3 == 1 ? 0.95 : 1.0);
    auto a = det.observe(probe_at(t += 1.0, k + 1, {1.0, wiggle, 1.02, 0.97}));
    EXPECT_EQ(a.kind, cd::MonitorAction::Kind::kNone) << "probe " << k;
  }
  EXPECT_TRUE(detections.empty());
}

TEST_F(StragglersTest, DetectorDoesNotOscillate) {
  auto cfg = detector_config();
  std::vector<orch::DetectionEvent> detections;
  std::vector<orch::MitigationRecord> mitigations;
  orch::StragglerDetector det(cfg, &detections, &mitigations);

  double t = 0.0;
  long iter = 0;
  int actions = 0;
  double first_action_at = -1.0;
  // A persistent anomaly (the mitigation "didn't take"): the cooldown must
  // space out repeat actions by at least cooldown_seconds.
  for (int k = 0; k < 200; ++k) {
    auto a = det.observe(probe_at(t += 1.0, ++iter, {1.0, 1.0, 2.0, 1.0}));
    if (a.kind != cd::MonitorAction::Kind::kNone) {
      ++actions;
      if (first_action_at < 0.0) {
        first_action_at = t;
      } else {
        EXPECT_GE(t - first_action_at, cfg.thresholds.cooldown_seconds);
        break;
      }
    }
  }
  EXPECT_GE(actions, 1);
  EXPECT_EQ(mitigations.size(), static_cast<std::size_t>(actions));
}

TEST_F(StragglersTest, DetectorRoutesPsSaturationToAddPs) {
  auto cfg = detector_config();
  orch::StragglerDetector det(cfg);
  double t = 0.0;
  cd::MonitorAction action;
  for (int k = 0; k < 20; ++k) {
    action = det.observe(probe_at(t += 1.0, k + 1, {1.0, 1.0, 1.0, 1.0}, 0.99));
    if (action.kind != cd::MonitorAction::Kind::kNone) break;
  }
  ASSERT_EQ(action.kind, cd::MonitorAction::Kind::kStop);
  EXPECT_EQ(action.reason, "ps-bottleneck");
}

TEST_F(StragglersTest, DetectorForecastDowngradesBspToSsp) {
  auto cfg = detector_config();
  cfg.time_goal_seconds = 100.0;  // 10000 iterations at 1 s/iter cannot fit
  orch::StragglerDetector det(cfg);
  double t = 0.0;
  cd::MonitorAction action;
  for (int k = 0; k < 20; ++k) {
    action = det.observe(probe_at(t += 1.0, k + 1, {1.0, 1.0, 1.0, 1.0}));
    if (action.kind != cd::MonitorAction::Kind::kNone) break;
  }
  ASSERT_EQ(action.kind, cd::MonitorAction::Kind::kDowngradeSsp);
  EXPECT_EQ(action.reason, "slo-forecast");
}

TEST_F(StragglersTest, PolicyNoneDetectsButNeverActs) {
  auto cfg = detector_config();
  cfg.policy = orch::MitigationPolicy::kNone;
  std::vector<orch::DetectionEvent> detections;
  orch::StragglerDetector det(cfg, &detections);
  double t = 0.0;
  for (int k = 0; k < 60; ++k) {
    auto a = det.observe(probe_at(t += 1.0, k + 1, {1.0, 1.0, 3.0, 1.0}));
    EXPECT_EQ(a.kind, cd::MonitorAction::Kind::kNone);
  }
  EXPECT_FALSE(detections.empty());
}

TEST_F(StragglersTest, PolicyParsingRoundTrips) {
  for (const char* name : {"none", "replace", "add-ps", "ssp", "replan", "auto"}) {
    EXPECT_STREQ(orch::to_string(orch::parse_mitigation_policy(name)), name);
  }
  EXPECT_THROW(orch::parse_mitigation_policy("fix-it"), std::invalid_argument);
}

// ---------------------------------------------------------------- end-to-end

TEST_F(StragglersTest, SentinelReplacesSlowWorkerAndBeatsUnmitigatedRun) {
  const auto& w = cd::workload_by_name("cifar10");
  const auto plan = manual_plan(4, 1, 400);
  const auto schedule =
      cf::FaultSchedule::parse("slow:wk1@200x4+100000");  // effectively permanent
  const core::ProvisionGoal goal{cu::Seconds{1e9}, 1e9};

  orch::SentinelOptions on;
  const orch::SentinelReport mitigated = orch::SloSentinel(on).run(w, plan, schedule, goal);
  orch::SentinelOptions off = on;
  off.enabled = false;
  const orch::SentinelReport plain = orch::SloSentinel(off).run(w, plan, schedule, goal);

  EXPECT_FALSE(mitigated.detections.empty());
  EXPECT_FALSE(mitigated.mitigations.empty());
  ASSERT_FALSE(mitigated.training.monitor.exclusions.empty());
  EXPECT_EQ(mitigated.training.monitor.exclusions[0].worker, 1);
  EXPECT_EQ(mitigated.training.iterations, 400);
  // Replacing the degraded node must beat riding out the 4x slowdown.
  EXPECT_LT(mitigated.training.total_time, plain.training.total_time);
  // ... and the replacement node costs extra dollars.
  EXPECT_GT(mitigated.actual_cost.value(), 0.0);
}

TEST_F(StragglersTest, SentinelRunsAreDeterministic) {
  const auto& w = cd::workload_by_name("cifar10");
  const auto plan = manual_plan(4, 1, 300);
  const auto schedule = cf::FaultSchedule::parse("slow:wk2@150x3+100000");
  const core::ProvisionGoal goal{cu::Seconds{1e9}, 1e9};
  const orch::SentinelOptions options;
  const auto a = orch::SloSentinel(options).run(w, plan, schedule, goal);
  const auto b = orch::SloSentinel(options).run(w, plan, schedule, goal);
  EXPECT_EQ(a.training.total_time, b.training.total_time);
  EXPECT_EQ(a.training.final_loss, b.training.final_loss);
  EXPECT_EQ(a.actual_cost.value(), b.actual_cost.value());
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i].at_seconds, b.detections[i].at_seconds);
    EXPECT_EQ(a.detections[i].kind, b.detections[i].kind);
    EXPECT_EQ(a.detections[i].worker, b.detections[i].worker);
  }
}

TEST_F(StragglersTest, SentinelHonorsMitigationBudget) {
  const auto& w = cd::workload_by_name("cifar10");
  const auto plan = manual_plan(4, 1, 400);
  // Every worker degrades permanently, one after another.
  const auto schedule = cf::FaultSchedule::parse(
      "slow:wk0@150x4+100000;slow:wk1@300x4+100000;slow:wk2@450x4+100000;"
      "slow:wk3@600x4+100000");
  const core::ProvisionGoal goal{cu::Seconds{1e9}, 1e9};
  orch::SentinelOptions options;
  options.max_actions = 2;
  const auto report = orch::SloSentinel(options).run(w, plan, schedule, goal);
  EXPECT_LE(report.mitigations.size(), 2u);
  EXPECT_EQ(report.training.iterations, 400);  // the budget still completes
}

TEST_F(StragglersTest, SentinelSspPolicyDowngradesUnderForecastMiss) {
  const auto& w = cd::workload_by_name("cifar10");  // BSP
  const auto plan = manual_plan(4, 1, 400);
  // A uniform cluster-wide slowdown: no single straggler stands out, so the
  // forecast detector is the one that must fire.
  const auto schedule = cf::FaultSchedule::parse(
      "slow:wk0@100x2+100000;slow:wk1@100x2+100000;slow:wk2@100x2+100000;"
      "slow:wk3@100x2+100000");
  orch::SentinelOptions options;
  options.policy = orch::MitigationPolicy::kSsp;
  // Tight but reachable: the fault-free run takes ~824 s.
  const core::ProvisionGoal goal{cu::Seconds{1200.0}, 1e9};
  const auto report = orch::SloSentinel(options).run(w, plan, schedule, goal);
  EXPECT_TRUE(report.training.monitor.downgraded);
  EXPECT_EQ(report.training.iterations, 400);
  ASSERT_FALSE(report.mitigations.empty());
  EXPECT_EQ(report.mitigations[0].action, "ssp-downgrade");
}

TEST_F(StragglersTest, SentinelDisabledMatchesPlainTraining) {
  const auto& w = cd::workload_by_name("cifar10");
  const auto plan = manual_plan(4, 1, 200);
  const auto schedule = cf::FaultSchedule::parse("slow:wk1@100x2+100000");
  const core::ProvisionGoal goal{cu::Seconds{1e9}, 1e9};
  orch::SentinelOptions options;
  options.enabled = false;
  const auto report = orch::SloSentinel(options).run(w, plan, schedule, goal);

  // The disabled sentinel must run the training bit-identically to a direct
  // run_training call with the same cluster, seed, and schedule (no crash
  // events here, so no recovery enrichment perturbs the timeline).
  const auto cluster = cd::ClusterSpec::homogeneous(m4(), 4, 1);
  cd::TrainOptions o;
  o.iterations = 200;
  o.seed = options.seed;
  o.faults = &schedule;
  const auto direct = cd::run_training(cluster, w, o);
  EXPECT_EQ(report.training.total_time, direct.total_time);
  EXPECT_EQ(report.training.final_loss, direct.final_loss);
  EXPECT_EQ(report.training.computation_time, direct.computation_time);
  EXPECT_EQ(report.training.communication_time, direct.communication_time);
  EXPECT_TRUE(report.detections.empty());
  EXPECT_TRUE(report.mitigations.empty());
}

TEST_F(StragglersTest, JournalLedgerSumsToSentinelCostExactly) {
  // A replaced straggler puts kMitigate settlements next to the original
  // meter settlement: the attribution ledger must still reproduce
  // report.actual_cost bit-for-bit (and the gauge mirrors it).
  const auto& w = cd::workload_by_name("cifar10");
  const auto plan = manual_plan(4, 1, 400);
  const auto schedule = cf::FaultSchedule::parse("slow:wk1@200x4+100000");
  const core::ProvisionGoal goal{cu::Seconds{1e9}, 1e9};

  cynthia::telemetry::Telemetry tel;
  orch::SentinelOptions options;
  options.training.telemetry = &tel;
  const auto report = orch::SloSentinel(options).run(w, plan, schedule, goal);
  ASSERT_FALSE(report.mitigations.empty());

  const auto ledger = cynthia::telemetry::CostLedger::from(tel.journal);
  EXPECT_FALSE(ledger.entries().empty());
  EXPECT_EQ(ledger.total().value(), report.actual_cost.value());
  EXPECT_EQ(tel.metrics.gauge_value(cynthia::telemetry::metric::kBillingDollars),
            report.actual_cost.value());
  EXPECT_GT(ledger.cause_dollars(cynthia::telemetry::CostCause::kSentinelAction), 0.0)
      << "the straggler replacement must be attributed to a sentinel action";

  // ... and carrying the journal must not perturb the run itself.
  orch::SentinelOptions off = options;
  off.training.telemetry = nullptr;
  const auto plain = orch::SloSentinel(off).run(w, plan, schedule, goal);
  EXPECT_EQ(report.training.total_time, plain.training.total_time);
  EXPECT_EQ(report.training.final_loss, plain.training.final_loss);
  EXPECT_EQ(report.actual_cost.value(), plain.actual_cost.value());
}
