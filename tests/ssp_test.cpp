// Tests for the SSP (stale synchronous parallel) extension: the bounded-
// staleness sync mechanism from the paper's related work [14], implemented
// across the loss law, the training engine, the performance model and the
// provisioner.
#include <gtest/gtest.h>

#include "cloud/instance.hpp"
#include "core/loss_model.hpp"
#include "core/perf_model.hpp"
#include "core/predictor.hpp"
#include "core/provisioner.hpp"
#include "ddnn/loss.hpp"
#include "ddnn/trainer.hpp"
#include "profiler/profiler.hpp"

namespace cd = cynthia::ddnn;
namespace co = cynthia::core;
namespace cc = cynthia::cloud;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }
const cc::InstanceType& m1() { return cc::Catalog::aws().at("m1.xlarge"); }

cd::WorkloadSpec ssp_workload(const char* name, int bound = 3) {
  auto w = cd::workload_by_name(name);
  w.sync = cd::SyncMode::SSP;
  w.ssp_staleness_bound = bound;
  return w;
}
}  // namespace

// ------------------------------------------------------------ staleness law

TEST(SspStaleness, InterpolatesBetweenBspAndAsp) {
  for (int n : {2, 4, 9, 16}) {
    const double bsp = cd::staleness_factor(cd::SyncMode::BSP, n, 0);
    const double asp = cd::staleness_factor(cd::SyncMode::ASP, n, 0);
    const double ssp = cd::staleness_factor(cd::SyncMode::SSP, n, 3);
    EXPECT_DOUBLE_EQ(bsp, 1.0);
    EXPECT_GE(ssp, bsp);
    EXPECT_LE(ssp, asp);
  }
}

TEST(SspStaleness, BoundCapsAtClusterSize) {
  // A bound larger than n-1 cannot add staleness beyond ASP's.
  EXPECT_DOUBLE_EQ(cd::staleness_factor(cd::SyncMode::SSP, 4, 100),
                   cd::staleness_factor(cd::SyncMode::ASP, 4, 0));
  // Bound 0 behaves like BSP in convergence terms.
  EXPECT_DOUBLE_EQ(cd::staleness_factor(cd::SyncMode::SSP, 8, 0), 1.0);
}

TEST(SspStaleness, MonotoneInBound) {
  double prev = 0.0;
  for (int b : {0, 1, 2, 4, 8}) {
    const double f = cd::staleness_factor(cd::SyncMode::SSP, 16, b);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(SspStaleness, LossModelUsesBound) {
  cd::LossCoefficients c{1000.0, 0.2};
  const double tight = cd::loss_model(c, cd::SyncMode::SSP, 1000, 9, 1);
  const double loose = cd::loss_model(c, cd::SyncMode::SSP, 1000, 9, 8);
  const double asp = cd::loss_model(c, cd::SyncMode::ASP, 1000, 9);
  EXPECT_LT(tight, loose);
  EXPECT_LE(loose, asp);
}

// ---------------------------------------------------------------- engine

TEST(SspEngine, RunsToCompletionDeterministically) {
  const auto w = ssp_workload("cifar10");
  auto cluster = cd::ClusterSpec::homogeneous(m4(), 4, 1);
  cd::TrainOptions o;
  o.iterations = 60;
  const auto a = cd::run_training(cluster, w, o);
  const auto b = cd::run_training(cluster, w, o);
  EXPECT_EQ(a.iterations, 60);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(SspEngine, HomogeneousThroughputMatchesAsp) {
  // With identical workers the gap never binds (jitter is tiny), so SSP
  // and ASP times coincide within a few percent.
  auto ssp = ssp_workload("resnet32", 3);
  auto asp = cd::workload_by_name("resnet32");
  auto cluster = cd::ClusterSpec::homogeneous(m4(), 4, 1);
  cd::TrainOptions o;
  o.iterations = 80;
  const double t_ssp = cd::run_training(cluster, ssp, o).total_time;
  const double t_asp = cd::run_training(cluster, asp, o).total_time;
  EXPECT_NEAR(t_ssp, t_asp, t_asp * 0.05);
}

TEST(SspEngine, StragglersGateFastWorkers) {
  // With a straggler in the cluster a tight bound drags everyone to the
  // straggler's pace; ASP keeps the fast workers productive.
  auto ssp = ssp_workload("resnet32", 1);
  auto asp = cd::workload_by_name("resnet32");
  auto cluster = cd::ClusterSpec::with_stragglers(m4(), m1(), 4, 1);
  cd::TrainOptions o;
  o.iterations = 80;
  const double t_ssp = cd::run_training(cluster, ssp, o).total_time;
  const double t_asp = cd::run_training(cluster, asp, o).total_time;
  EXPECT_GT(t_ssp, t_asp * 1.25);
}

TEST(SspEngine, LooserBoundIsFasterOnStragglerClusters) {
  auto cluster = cd::ClusterSpec::with_stragglers(m4(), m1(), 4, 1);
  cd::TrainOptions o;
  o.iterations = 80;
  const double tight = cd::run_training(cluster, ssp_workload("resnet32", 1), o).total_time;
  const double loose = cd::run_training(cluster, ssp_workload("resnet32", 8), o).total_time;
  EXPECT_LT(loose, tight);
}

TEST(SspEngine, BoundZeroClampsToOneNoDeadlock) {
  auto w = ssp_workload("cifar10", 0);
  auto cluster = cd::ClusterSpec::homogeneous(m4(), 3, 1);
  cd::TrainOptions o;
  o.iterations = 30;
  const auto r = cd::run_training(cluster, w, o);
  EXPECT_EQ(r.iterations, 30);
  EXPECT_GT(r.total_time, 0.0);
}

TEST(SspEngine, OptionOverridesWorkloadBound) {
  auto cluster = cd::ClusterSpec::with_stragglers(m4(), m1(), 4, 1);
  auto w = ssp_workload("resnet32", 8);
  cd::TrainOptions tight;
  tight.iterations = 80;
  tight.ssp_staleness_bound = 1;
  cd::TrainOptions inherit;
  inherit.iterations = 80;
  const double t_tight = cd::run_training(cluster, w, tight).total_time;
  const double t_loose = cd::run_training(cluster, w, inherit).total_time;
  EXPECT_GT(t_tight, t_loose);
}

TEST(SspEngine, TighterBoundConvergesFasterPerIteration) {
  // Same fitted curve, same iteration budget: a tighter staleness bound
  // must end at a lower loss (cross-mode comparisons are not meaningful
  // because the paper fits each mechanism's curve separately).
  auto cluster = cd::ClusterSpec::homogeneous(m4(), 9, 1);
  cd::TrainOptions o;
  o.iterations = 300;
  const double l_tight = cd::run_training(cluster, ssp_workload("resnet32", 1), o).final_loss;
  const double l_loose = cd::run_training(cluster, ssp_workload("resnet32", 8), o).final_loss;
  EXPECT_LT(l_tight, l_loose);
}

// ------------------------------------------------------- model + planner

TEST(SspModel, PredictionTracksSimulatedTime) {
  const auto w = ssp_workload("resnet32", 3);
  const auto profile = cynthia::profiler::profile_workload(w, m4());
  co::CynthiaModel model(profile);
  for (bool hetero : {false, true}) {
    const auto cluster = hetero ? cd::ClusterSpec::with_stragglers(m4(), m1(), 6, 1)
                                : cd::ClusterSpec::homogeneous(m4(), 6, 1);
    cd::TrainOptions o;
    o.iterations = 90;
    const auto obs = cd::run_training(cluster, w, o);
    const double pred = model.predict_total(cluster, cd::SyncMode::SSP, 90).value();
    EXPECT_NEAR(pred, obs.total_time, obs.total_time * 0.15) << "hetero=" << hetero;
  }
}

TEST(SspModel, LossModelRoundTrip) {
  co::LossModel m(cd::SyncMode::SSP, 900.0, 0.25, /*ssp_bound=*/3);
  for (int n : {2, 6, 12}) {
    const long total = m.total_iterations_for(0.9, n);
    EXPECT_LE(m.loss_at(static_cast<double>(total), n), 0.9 + 1e-9);
  }
  // SSP needs fewer iterations than ASP for the same target (less staleness).
  co::LossModel asp(cd::SyncMode::ASP, 900.0, 0.25);
  EXPECT_LT(m.total_iterations_for(0.9, 12), asp.total_iterations_for(0.9, 12));
}

TEST(SspProvisioner, ProducesGoalMeetingPlan) {
  auto w = ssp_workload("resnet32", 3);
  const auto pred = co::Predictor::build(w, m4());
  co::Provisioner prov(pred.model(), pred.loss(), {m4()});
  const co::ProvisionGoal goal{cynthia::util::minutes(120), 0.6};
  const auto plan = prov.plan(cd::SyncMode::SSP, goal);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.total_iterations, plan.iterations * plan.n_workers);
  cd::TrainOptions o;
  o.iterations = plan.total_iterations;
  const auto r = cd::run_training(
      cd::ClusterSpec::homogeneous(plan.type, plan.n_workers, plan.n_ps), w, o);
  EXPECT_LE(r.total_time, goal.time_goal.value() * 1.10);
  EXPECT_LE(r.final_loss, 0.6 * 1.06);
}
