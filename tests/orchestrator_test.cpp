// Tests for the Kubernetes-like control plane: master/join handshake, node
// lifecycle, pod scheduling, deployment + billing, and the end-to-end
// training service.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cloud/instance.hpp"
#include "cloud/pricing.hpp"
#include "core/provisioner.hpp"
#include "orchestrator/cluster_manager.hpp"
#include "orchestrator/master.hpp"
#include "orchestrator/node.hpp"
#include "orchestrator/scheduler.hpp"
#include "orchestrator/service.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace orch = cynthia::orch;
namespace cc = cynthia::cloud;
namespace co = cynthia::core;
namespace cd = cynthia::ddnn;
namespace cu = cynthia::util;

namespace {
const cc::InstanceType& m4() { return cc::Catalog::aws().at("m4.xlarge"); }

co::ProvisionPlan simple_plan(int workers, int ps) {
  co::ProvisionPlan p;
  p.feasible = true;
  p.type = m4();
  p.n_workers = workers;
  p.n_ps = ps;
  p.iterations = 100;
  p.total_iterations = 100;
  return p;
}
}  // namespace

// ------------------------------------------------------------------ master

TEST(Master, IssueAndJoin) {
  orch::Master m(7);
  const auto creds = m.issue_credentials(0.0);
  EXPECT_FALSE(creds.token.empty());
  EXPECT_EQ(creds.discovery_hash.rfind("sha256:", 0), 0u);
  EXPECT_TRUE(m.join(1, creds, 10.0));
  EXPECT_TRUE(m.is_member(1));
  EXPECT_EQ(m.member_count(), 1u);
}

TEST(Master, RejectsWrongToken) {
  orch::Master m(7);
  auto creds = m.issue_credentials(0.0);
  auto forged = creds;
  forged.token = "deadbe.ef0000000000000000";
  EXPECT_FALSE(m.join(1, forged, 1.0));
  auto bad_hash = creds;
  bad_hash.discovery_hash = "sha256:0";
  EXPECT_FALSE(m.join(1, bad_hash, 1.0));
}

TEST(Master, RejectsExpiredToken) {
  orch::Master m(7);
  const auto creds = m.issue_credentials(0.0, /*ttl=*/100.0);
  EXPECT_FALSE(m.join(1, creds, 101.0));
  EXPECT_TRUE(m.join(1, creds, 99.0));
}

TEST(Master, RejectsDuplicateJoinAndJoinBeforeIssue) {
  orch::Master fresh(7);
  orch::JoinCredentials none;
  EXPECT_FALSE(fresh.join(1, none, 0.0));
  orch::Master m(7);
  const auto creds = m.issue_credentials(0.0);
  EXPECT_TRUE(m.join(1, creds, 1.0));
  EXPECT_FALSE(m.join(1, creds, 2.0));
  m.remove(1);
  EXPECT_TRUE(m.join(1, creds, 3.0));
}

// --------------------------------------------------------------- scheduler

TEST(Scheduler, BindsWhenCapacitySuffices) {
  std::vector<orch::Node> nodes(2);
  for (int i = 0; i < 2; ++i) {
    nodes[i].id = i + 1;
    nodes[i].state = orch::NodeState::Ready;
    nodes[i].docker_slots = 2;
  }
  std::vector<orch::Pod> pods{{1, orch::PodRole::ParameterServer, 0},
                              {2, orch::PodRole::Worker, 0},
                              {3, orch::PodRole::Worker, 0}};
  ASSERT_TRUE(orch::Scheduler::bind(pods, nodes));
  for (const auto& p : pods) EXPECT_TRUE(p.bound());
  EXPECT_EQ(orch::Scheduler::free_capacity(nodes), 1);
}

TEST(Scheduler, RefusesWhenOverCapacityWithoutPartialBind) {
  std::vector<orch::Node> nodes(1);
  nodes[0].id = 1;
  nodes[0].state = orch::NodeState::Ready;
  nodes[0].docker_slots = 2;
  std::vector<orch::Pod> pods{{1, orch::PodRole::Worker, 0},
                              {2, orch::PodRole::Worker, 0},
                              {3, orch::PodRole::Worker, 0}};
  EXPECT_FALSE(orch::Scheduler::bind(pods, nodes));
  for (const auto& p : pods) EXPECT_FALSE(p.bound());
  EXPECT_EQ(nodes[0].used_slots, 0);
}

TEST(Scheduler, SpreadsPsAcrossNodes) {
  std::vector<orch::Node> nodes(2);
  for (int i = 0; i < 2; ++i) {
    nodes[i].id = i + 1;
    nodes[i].state = orch::NodeState::Ready;
    nodes[i].docker_slots = 2;
  }
  std::vector<orch::Pod> pods{{1, orch::PodRole::ParameterServer, 0},
                              {2, orch::PodRole::ParameterServer, 0}};
  ASSERT_TRUE(orch::Scheduler::bind(pods, nodes));
  EXPECT_NE(pods[0].node, pods[1].node);
}

TEST(Scheduler, IgnoresNotReadyNodes) {
  std::vector<orch::Node> nodes(1);
  nodes[0].id = 1;
  nodes[0].state = orch::NodeState::Booting;
  nodes[0].docker_slots = 4;
  std::vector<orch::Pod> pods{{1, orch::PodRole::Worker, 0}};
  EXPECT_FALSE(orch::Scheduler::bind(pods, nodes));
  EXPECT_EQ(orch::Scheduler::free_capacity(nodes), 0);
}

// ---------------------------------------------------------- cluster manager

TEST(ClusterManager, NodesWalkLifecycleToReady) {
  cynthia::sim::Simulator sim;
  cc::BillingMeter billing;
  orch::ClusterManager mgr(sim, billing, 5);
  const auto ids = mgr.launch(m4(), 3);
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_TRUE(mgr.wait_all_ready());
  for (auto id : ids) {
    const auto& n = mgr.node(id);
    EXPECT_EQ(n.state, orch::NodeState::Ready);
    EXPECT_GT(n.ready_at, n.requested_at);
    EXPECT_TRUE(mgr.master().is_member(id));
  }
  EXPECT_EQ(billing.running_count(), 3u);
}

TEST(ClusterManager, DeploySchedulesAllPodsAndBuildsSpec) {
  cynthia::sim::Simulator sim;
  cc::BillingMeter billing;
  orch::ClusterManager mgr(sim, billing, 5);
  auto d = mgr.deploy(simple_plan(5, 2));
  EXPECT_EQ(d.pods.size(), 7u);
  for (const auto& p : d.pods) EXPECT_TRUE(p.bound());
  EXPECT_EQ(d.spec.n_workers(), 5);
  EXPECT_EQ(d.spec.n_ps(), 2);
  // 7 dockers at 2 per m4.xlarge -> 4 instances.
  EXPECT_EQ(d.nodes.size(), 4u);
  EXPECT_GT(d.provisioning_seconds(), 0.0);
  // Provisioning takes boot+install+join ~ tens of seconds, not hours.
  EXPECT_LT(d.provisioning_seconds(), 300.0);
  mgr.teardown(d);
  EXPECT_EQ(billing.running_count(), 0u);
  EXPECT_FALSE(d.active);
  // Idempotent teardown.
  EXPECT_NO_THROW(mgr.teardown(d));
}

TEST(ClusterManager, DeployInfeasiblePlanThrows) {
  cynthia::sim::Simulator sim;
  cc::BillingMeter billing;
  orch::ClusterManager mgr(sim, billing);
  co::ProvisionPlan bad;
  bad.feasible = false;
  EXPECT_THROW(mgr.deploy(bad), std::invalid_argument);
  EXPECT_THROW(mgr.launch(m4(), 0), std::invalid_argument);
}

TEST(ClusterManager, BillingCoversProvisioningWindow) {
  cynthia::sim::Simulator sim;
  cc::BillingMeter billing;
  orch::ClusterManager mgr(sim, billing, 5);
  auto d = mgr.deploy(simple_plan(2, 1));
  const double ready = sim.now();
  sim.run_until(ready + 3600.0);
  mgr.teardown(d);
  // 2 instances for (provisioning + 1h) each.
  const double expect = 2 * m4().price.value() * (ready + 3600.0) / 3600.0;
  EXPECT_NEAR(billing.total(cu::Seconds{sim.now()}).value(), expect, expect * 0.01);
}

// ----------------------------------------------------------------- service

TEST(TrainingService, EndToEndMeetsGoal) {
  orch::TrainingService service;
  const auto& w = cd::workload_by_name("cifar10");
  co::ProvisionGoal goal{cu::minutes(120), 0.8};
  const auto report = service.submit(w, goal);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->plan.feasible);
  EXPECT_GT(report->profiling_seconds, 0.0);
  EXPECT_GT(report->provisioning_seconds, 0.0);
  EXPECT_LT(report->planning_seconds, 1.0) << "Alg. 1 must stay in the ms range (Sec. 5.3)";
  EXPECT_TRUE(report->time_goal_met) << report->training.total_time;
  EXPECT_TRUE(report->loss_goal_met) << report->achieved_loss;
  EXPECT_GT(report->actual_cost.value(), 0.0);
  // Billed cost must exceed the plan's pure-training estimate (provisioning
  // overhead + whole instances) but stay in its ballpark.
  EXPECT_GT(report->actual_cost.value(), report->plan.predicted_cost.value() * 0.5);
  EXPECT_LT(report->actual_cost.value(), report->plan.predicted_cost.value() * 4.0);
}

TEST(TrainingService, InfeasibleGoalReturnsNullopt) {
  orch::TrainingService service;
  const auto& w = cd::workload_by_name("vgg19");
  const auto report = service.submit(w, {cu::Seconds{20.0}, 0.8});
  EXPECT_FALSE(report.has_value());
}

TEST(NodeStateNames, AllDistinct) {
  EXPECT_EQ(orch::to_string(orch::NodeState::Booting), "Booting");
  EXPECT_EQ(orch::to_string(orch::NodeState::Ready), "Ready");
  EXPECT_EQ(orch::to_string(orch::NodeState::Failed), "Failed");
  EXPECT_EQ(orch::to_string(orch::PodRole::ParameterServer), "ps");
  EXPECT_EQ(orch::to_string(orch::PodRole::Worker), "worker");
}

// ------------------------------------------------------ failure injection

TEST(ClusterManagerFaults, ReplacesFailedJoins) {
  cynthia::sim::Simulator sim;
  cc::BillingMeter billing;
  orch::NodeTimings flaky;
  flaky.join_failure_probability = 0.6;
  orch::ClusterManager mgr(sim, billing, 7, flaky);
  auto d = mgr.deploy(simple_plan(4, 1));
  EXPECT_GT(d.replaced_nodes, 0) << "with 60% join failures, replacements are expected";
  for (const auto& p : d.pods) EXPECT_TRUE(p.bound());
  // Replaced (terminated) instances must have stopped billing; only the
  // live ones keep running.
  EXPECT_EQ(billing.running_count(), d.nodes.size());
  // Replacement cycles lengthen provisioning.
  cynthia::sim::Simulator sim2;
  cc::BillingMeter billing2;
  orch::ClusterManager healthy(sim2, billing2, 7);
  auto d2 = healthy.deploy(simple_plan(4, 1));
  EXPECT_GT(d.provisioning_seconds(), d2.provisioning_seconds());
}

TEST(ClusterManagerFaults, GivesUpAfterReplacementBudget) {
  cynthia::sim::Simulator sim;
  cc::BillingMeter billing;
  orch::NodeTimings hopeless;
  hopeless.join_failure_probability = 1.0;
  orch::ClusterManager mgr(sim, billing, 7, hopeless);
  EXPECT_THROW(mgr.deploy(simple_plan(4, 1)), std::runtime_error);
}

TEST(ClusterManagerFaults, ZeroProbabilityNeverReplaces) {
  cynthia::sim::Simulator sim;
  cc::BillingMeter billing;
  orch::ClusterManager mgr(sim, billing, 7);
  auto d = mgr.deploy(simple_plan(6, 2));
  EXPECT_EQ(d.replaced_nodes, 0);
}

TEST(JoinRetryPolicy, DefaultPolicyNeverDelaysAndNeverDrawsFromRng) {
  orch::JoinRetryPolicy policy;  // base 0: the historical immediate retry
  cu::Rng rng(42), untouched(42);
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ(policy.delay_seconds(round, rng), 0.0);
  }
  // A zero-delay policy must not perturb the shared random stream (deploy
  // timelines are pinned by the determinism suite).
  EXPECT_DOUBLE_EQ(rng.jitter(0.25), untouched.jitter(0.25));
}

TEST(JoinRetryPolicy, ScheduleGrowsExponentiallyAndCaps) {
  orch::JoinRetryPolicy policy;
  policy.base_seconds = 5.0;
  policy.growth = 2.0;
  policy.max_seconds = 30.0;
  cu::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(0, rng), 5.0);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(1, rng), 10.0);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(2, rng), 20.0);
  EXPECT_DOUBLE_EQ(policy.delay_seconds(3, rng), 30.0);  // capped
  EXPECT_DOUBLE_EQ(policy.delay_seconds(9, rng), 30.0);
  EXPECT_THROW(policy.delay_seconds(-1, rng), std::invalid_argument);
}

TEST(JoinRetryPolicy, JitterIsSeededAndBounded) {
  orch::JoinRetryPolicy policy;
  policy.base_seconds = 10.0;
  policy.jitter = 0.25;
  cu::Rng a(7), b(7), c(8);
  std::vector<double> from_a, from_b;
  bool differs_across_seeds = false;
  for (int round = 0; round < 4; ++round) {
    from_a.push_back(policy.delay_seconds(round, a));
    from_b.push_back(policy.delay_seconds(round, b));
    const double other = policy.delay_seconds(round, c);
    if (other != from_a.back()) differs_across_seeds = true;
    const double nominal = std::min(10.0 * std::pow(2.0, round), policy.max_seconds);
    EXPECT_GE(from_a.back(), nominal * 0.75);
    EXPECT_LE(from_a.back(), nominal * 1.25);
  }
  EXPECT_EQ(from_a, from_b);  // same seed, same schedule
  EXPECT_TRUE(differs_across_seeds);
}

TEST(JoinRetryPolicy, BackoffLengthensFlakyDeployments) {
  orch::NodeTimings flaky;
  flaky.join_failure_probability = 0.6;
  cynthia::sim::Simulator sim;
  cc::BillingMeter billing;
  orch::ClusterManager immediate(sim, billing, 7, flaky);
  auto d = immediate.deploy(simple_plan(4, 1));

  cynthia::sim::Simulator sim2;
  cc::BillingMeter billing2;
  orch::ClusterManager patient(sim2, billing2, 7, flaky);
  orch::JoinRetryPolicy policy;
  policy.base_seconds = 20.0;
  patient.set_join_retry(policy);
  auto d2 = patient.deploy(simple_plan(4, 1));

  // Same seed, same failures; the backoff only adds waiting time.
  EXPECT_EQ(d2.replaced_nodes, d.replaced_nodes);
  EXPECT_GT(d2.provisioning_seconds(), d.provisioning_seconds());
}
